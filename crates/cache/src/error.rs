//! Error types for the cooperative cache.

use std::error::Error;
use std::fmt;

use cablevod_hfc::ids::{PeerId, ProgramId, SegmentId};
use cablevod_hfc::HfcError;

/// Errors raised by index-server and placement operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum CacheError {
    /// The placement ledger had no free slot for a segment. Indicates a
    /// broken capacity invariant between strategy and ledger.
    PlacementOverflow {
        /// Program whose placement failed.
        program: ProgramId,
        /// Slots requested.
        requested: u32,
        /// Slots free in the neighborhood.
        free: u64,
    },
    /// A strategy decision referenced a program the index server does not
    /// consider admitted (or vice versa) — an internal consistency failure.
    InconsistentState {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A slot release referenced an unknown peer.
    UnknownPeer {
        /// The offending peer id.
        peer: PeerId,
    },
    /// A segment operation disagreed with the underlying set-top box.
    Stb(HfcError),
    /// A strategy requiring an access schedule (Oracle) was built without
    /// one.
    MissingSchedule,
    /// A windowed schedule's backing store failed or returned corrupt
    /// data (see [`crate::schedule`]).
    Schedule {
        /// What went wrong.
        reason: String,
    },
    /// A duplicate placement was attempted.
    DuplicatePlacement {
        /// The segment already placed.
        segment: SegmentId,
    },
    /// A strategy name resolved against neither the registry nor the
    /// built-in spec grammar (see [`crate::registry`]).
    UnknownStrategy {
        /// The unresolvable name.
        name: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::PlacementOverflow {
                program,
                requested,
                free,
            } => write!(
                f,
                "no free slots placing {program}: requested {requested}, free {free}"
            ),
            CacheError::InconsistentState { reason } => {
                write!(f, "index server state inconsistent: {reason}")
            }
            CacheError::UnknownPeer { peer } => write!(f, "unknown peer {peer} in ledger"),
            CacheError::Stb(e) => write!(f, "set-top box refused operation: {e}"),
            CacheError::MissingSchedule => {
                write!(f, "oracle strategy requires a future access schedule")
            }
            CacheError::Schedule { reason } => {
                write!(f, "schedule source failure: {reason}")
            }
            CacheError::DuplicatePlacement { segment } => {
                write!(f, "segment {segment} placed twice")
            }
            CacheError::UnknownStrategy { name } => {
                write!(
                    f,
                    "unknown cache strategy {name:?} (not registered, and not a built-in spec)"
                )
            }
        }
    }
}

impl Error for CacheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CacheError::Stb(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HfcError> for CacheError {
    fn from(e: HfcError) -> Self {
        CacheError::Stb(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_entities() {
        let err = CacheError::PlacementOverflow {
            program: ProgramId::new(2),
            requested: 20,
            free: 3,
        };
        assert!(err.to_string().contains("prog2"));
        assert!(CacheError::MissingSchedule.to_string().contains("schedule"));
    }

    #[test]
    fn stb_errors_chain() {
        let inner = HfcError::UnknownPeer {
            peer: PeerId::new(1),
        };
        let err = CacheError::from(inner);
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CacheError>();
    }
}
