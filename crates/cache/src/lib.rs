//! # cablevod-cache — the cooperative proxy cache
//!
//! Implements §IV of *"Deploying Video-on-Demand Services on Cable
//! Networks"*: set-top boxes in each coaxial neighborhood organized into a
//! cooperative cache by an **index server** at the headend.
//!
//! * [`index`] — the index server: request resolution (hit/miss flows of
//!   Figs 4–5), placement bookkeeping, capture-on-broadcast fill;
//! * [`placement`] — load-balanced (or random / first-fit) slot placement;
//! * [`strategy`] — the [`strategy::CacheStrategy`] abstraction, the open
//!   [`strategy::StrategyFactory`] construction seam, and the declarative
//!   [`strategy::StrategySpec`] selection of the built-ins;
//! * [`registry`] — the by-name [`registry::StrategyRegistry`] through
//!   which out-of-tree strategies join the simulator;
//! * [`lru`], [`lfu`], [`oracle`], [`feed`] — the paper's LRU, windowed
//!   LFU, Oracle, and global-popularity LFU variants.
//!
//! # Examples
//!
//! ```
//! use cablevod_cache::strategy::{CacheStrategy, StrategySpec};
//! use cablevod_hfc::ids::{NeighborhoodId, ProgramId};
//! use cablevod_hfc::units::SimTime;
//!
//! # fn main() -> Result<(), cablevod_cache::error::CacheError> {
//! let mut lfu = StrategySpec::default_lfu().build(30, NeighborhoodId::new(0), None)?;
//! let mut ops = Vec::new();
//! lfu.on_access(ProgramId::new(7), 12, SimTime::EPOCH, &mut ops);
//! assert!(lfu.contains(ProgramId::new(7)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod feed;
pub mod index;
pub mod lfu;
pub mod lru;
pub mod oracle;
pub mod placement;
pub mod registry;
pub mod schedule;
pub mod strategy;
pub mod watermark;

pub use error::CacheError;
pub use feed::{
    FeedEvent, FeedEvents, FeedProvider, GlobalFeed, GlobalLfu, PrecomputedFeed, SharedFeed,
};
pub use index::{IndexServer, IndexStats, MissReason, Resolution};
pub use lfu::WindowedLfu;
pub use lru::Lru;
pub use oracle::{AccessSchedule, Oracle};
pub use placement::{PlacementPolicy, SlotLedger};
pub use registry::StrategyRegistry;
pub use schedule::{ResidentSchedules, ScheduleReader, ScheduleSource, ScheduleWindow};
pub use strategy::{
    CacheOp, CacheStrategy, FillPolicy, GlobalLfuFactory, LfuFactory, LruFactory, NoCacheFactory,
    OracleFactory, StrategyContext, StrategyFactory, StrategySpec,
};
pub use watermark::{FeedProducer, FeedView, WatermarkFeed};
