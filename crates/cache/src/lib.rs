//! # cablevod-cache — the cooperative proxy cache
//!
//! Implements §IV of *"Deploying Video-on-Demand Services on Cable
//! Networks"*: set-top boxes in each coaxial neighborhood organized into a
//! cooperative cache by an **index server** at the headend.
//!
//! * [`index`] — the index server: request resolution (hit/miss flows of
//!   Figs 4–5), placement bookkeeping, capture-on-broadcast fill, and
//!   delayed-hit accounting under a [`fetch::FetchModel`];
//! * [`placement`] — load-balanced (or random / first-fit) slot placement;
//! * [`strategy`] — the [`strategy::CacheStrategy`] abstraction, the open
//!   [`strategy::StrategyFactory`] construction seam, the declarative
//!   [`strategy::StrategySpec`] selection of the built-ins, and the
//!   **strategy lifecycle** contract (hook ordering
//!   `on_feed_window` → `prepare` → `on_access`, documented there);
//! * [`registry`] — the by-name [`registry::StrategyRegistry`] through
//!   which out-of-tree strategies join the simulator, and the
//!   process-wide [`registry::register_plugin`] hook that makes them
//!   nameable from scenario spec files;
//! * [`fetch`] — the fetch-latency model behind delayed-hit accounting;
//! * [`lru`], [`lfu`], [`oracle`], [`feed`] — the paper's LRU, windowed
//!   LFU, Oracle, and global-popularity LFU variants;
//! * [`arc`], [`tlru`], [`prior`], [`delayed`] — the literature
//!   strategies: ARC, time-aware LRU, the prior-storing server
//!   (prefetch-hook consumer), and the delayed-hits-aware LFU
//!   (fetch-model consumer).
//!
//! # Examples
//!
//! ```
//! use cablevod_cache::strategy::{CacheStrategy, StrategySpec};
//! use cablevod_hfc::ids::{NeighborhoodId, ProgramId};
//! use cablevod_hfc::units::SimTime;
//!
//! # fn main() -> Result<(), cablevod_cache::error::CacheError> {
//! let mut lfu = StrategySpec::default_lfu().build(30, NeighborhoodId::new(0), None)?;
//! let mut ops = Vec::new();
//! lfu.on_access(ProgramId::new(7), 12, SimTime::EPOCH, &mut ops);
//! assert!(lfu.contains(ProgramId::new(7)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arc;
pub mod delayed;
pub mod error;
pub mod feed;
pub mod fetch;
pub mod index;
pub mod lfu;
pub mod lru;
pub mod oracle;
pub mod placement;
pub mod prior;
pub mod registry;
pub mod schedule;
pub mod strategy;
pub mod tlru;
pub mod watermark;

pub use self::arc::ArcCache;
pub use delayed::DelayedLfu;
pub use error::CacheError;
pub use feed::{
    FeedEvent, FeedEvents, FeedProvider, GlobalFeed, GlobalLfu, PrecomputedFeed, SharedFeed,
};
pub use fetch::FetchModel;
pub use index::{IndexServer, IndexStats, MissReason, Resolution};
pub use lfu::WindowedLfu;
pub use lru::Lru;
pub use oracle::{AccessSchedule, Oracle};
pub use placement::{PlacementPolicy, SlotLedger};
pub use prior::PriorStoring;
pub use registry::{register_plugin, StrategyRegistry};
pub use schedule::{ResidentSchedules, ScheduleReader, ScheduleSource, ScheduleWindow};
pub use strategy::{
    ArcFactory, CacheOp, CacheStrategy, DelayedLfuFactory, FillPolicy, GlobalLfuFactory,
    LfuFactory, LruFactory, NoCacheFactory, OracleFactory, PriorStoringFactory, StrategyContext,
    StrategyFactory, StrategySpec, TlruFactory,
};
pub use tlru::Tlru;
pub use watermark::{FeedProducer, FeedView, WatermarkFeed};
