//! Strongly-typed physical units used throughout the simulator.
//!
//! Three newtypes cover everything the paper's evaluation needs:
//!
//! * [`BitRate`] — a data rate in bits per second (e.g. the 8.06 Mb/s
//!   MPEG-2 stream rate of §IV-B.1);
//! * [`DataSize`] — an amount of data, stored internally in **bits** so that
//!   `rate × duration` is exact integer arithmetic;
//! * [`SimTime`] / [`SimDuration`] — seconds since the trace epoch
//!   (midnight of trace day 0) and spans thereof.
//!
//! # Examples
//!
//! ```
//! use cablevod_hfc::units::{BitRate, SimDuration};
//!
//! // One 5-minute segment at the paper's stream rate:
//! let seg = BitRate::STREAM_MPEG2_SD * SimDuration::from_secs(300);
//! assert_eq!(seg.as_bytes(), 302_250_000);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A data rate in bits per second.
///
/// The paper's constants are provided as associated constants. `BitRate`
/// multiplies with [`SimDuration`] to yield a [`DataSize`].
///
/// # Examples
///
/// ```
/// use cablevod_hfc::units::BitRate;
/// assert_eq!(BitRate::STREAM_MPEG2_SD.as_bps(), 8_060_000);
/// assert!(BitRate::COAX_DOWNSTREAM_LOW < BitRate::COAX_DOWNSTREAM_HIGH);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BitRate(u64);

impl BitRate {
    /// Minimum rate sustaining uninterrupted playback of high-quality
    /// MPEG-2 standard-definition TV (§IV-B.1): 8.06 Mb/s.
    pub const STREAM_MPEG2_SD: BitRate = BitRate::from_bps(8_060_000);
    /// Low end of coax downstream capacity (§II): 4.9 Gb/s.
    pub const COAX_DOWNSTREAM_LOW: BitRate = BitRate::from_gbps_int(4_900);
    /// High end of coax downstream capacity (§II): 6.6 Gb/s.
    pub const COAX_DOWNSTREAM_HIGH: BitRate = BitRate::from_gbps_int(6_600);
    /// Portion of downstream reserved for broadcast cable TV (§II): 3.3 Gb/s.
    pub const COAX_TV_ALLOCATION: BitRate = BitRate::from_gbps_int(3_300);
    /// Standardized upstream allocation (§II): approximately 215 Mb/s.
    pub const COAX_UPSTREAM: BitRate = BitRate::from_bps(215_000_000);
    /// A zero rate.
    pub const ZERO: BitRate = BitRate(0);

    /// Creates a rate from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Creates a rate from megabits per second (decimal: 1 Mb = 10^6 bits).
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Creates a rate from whole milli-gigabits per second; used for the
    /// paper's fractional Gb/s constants (4.9 Gb/s = `from_gbps_int(4_900)`).
    const fn from_gbps_int(milli_gbps: u64) -> Self {
        BitRate(milli_gbps * 1_000_000)
    }

    /// Creates a rate from (possibly fractional) gigabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is negative or not finite.
    pub fn from_gbps(gbps: f64) -> Self {
        assert!(
            gbps.is_finite() && gbps >= 0.0,
            "rate must be finite and non-negative"
        );
        BitRate((gbps * 1e9).round() as u64)
    }

    /// This rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// This rate in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This rate in gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction, clamping at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0.saturating_sub(rhs.0))
    }

    /// Fraction of `capacity` this rate represents (0.0 when capacity is 0).
    pub fn utilization_of(self, capacity: BitRate) -> f64 {
        if capacity.0 == 0 {
            0.0
        } else {
            self.0 as f64 / capacity.0 as f64
        }
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2} Gb/s", self.as_gbps())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2} Mb/s", self.as_mbps())
        } else {
            write!(f, "{} b/s", self.0)
        }
    }
}

impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}

impl AddAssign for BitRate {
    fn add_assign(&mut self, rhs: BitRate) {
        self.0 += rhs.0;
    }
}

impl Sub for BitRate {
    type Output = BitRate;
    fn sub(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 - rhs.0)
    }
}

impl Mul<SimDuration> for BitRate {
    type Output = DataSize;
    fn mul(self, rhs: SimDuration) -> DataSize {
        DataSize::from_bits(self.0 * rhs.as_secs())
    }
}

impl Sum for BitRate {
    fn sum<I: Iterator<Item = BitRate>>(iter: I) -> Self {
        BitRate(iter.map(|r| r.0).sum())
    }
}

/// An amount of data.
///
/// Stored internally in bits so that stream-rate arithmetic stays exact;
/// constructors and accessors speak bytes / gigabytes (decimal, matching the
/// paper's "10 GB per peer" style of numbers).
///
/// # Examples
///
/// ```
/// use cablevod_hfc::units::DataSize;
/// let contribution = DataSize::from_gigabytes(10);
/// assert_eq!(contribution.as_bytes(), 10_000_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0);

    /// Creates a size from raw bits.
    pub const fn from_bits(bits: u64) -> Self {
        DataSize(bits)
    }

    /// Creates a size from bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        DataSize(bytes * 8)
    }

    /// Creates a size from decimal gigabytes (10^9 bytes), the unit the
    /// paper uses for per-peer storage.
    pub const fn from_gigabytes(gb: u64) -> Self {
        DataSize(gb * 8_000_000_000)
    }

    /// Creates a size from decimal terabytes (10^12 bytes), the unit the
    /// paper uses for total cache sizes.
    pub const fn from_terabytes(tb: u64) -> Self {
        DataSize(tb * 8_000_000_000_000)
    }

    /// This size in bits.
    pub const fn as_bits(self) -> u64 {
        self.0
    }

    /// This size in whole bytes (truncating a trailing partial byte).
    pub const fn as_bytes(self) -> u64 {
        self.0 / 8
    }

    /// This size in decimal gigabytes.
    pub fn as_gigabytes(self) -> f64 {
        self.0 as f64 / 8e9
    }

    /// This size in decimal terabytes.
    pub fn as_terabytes(self) -> f64 {
        self.0 as f64 / 8e12
    }

    /// Saturating subtraction, clamping at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: DataSize) -> Option<DataSize> {
        self.0.checked_sub(rhs.0).map(DataSize)
    }

    /// The average rate achieved by moving this much data over `dur`.
    ///
    /// # Panics
    ///
    /// Panics if `dur` is zero.
    pub fn over(self, dur: SimDuration) -> BitRate {
        assert!(
            dur.as_secs() > 0,
            "cannot compute a rate over a zero duration"
        );
        BitRate(self.0 / dur.as_secs())
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.as_bytes();
        if bytes >= 1_000_000_000_000 {
            write!(f, "{:.2} TB", self.as_terabytes())
        } else if bytes >= 1_000_000_000 {
            write!(f, "{:.2} GB", self.as_gigabytes())
        } else if bytes >= 1_000_000 {
            write!(f, "{:.2} MB", bytes as f64 / 1e6)
        } else {
            write!(f, "{bytes} B")
        }
    }
}

impl Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 - rhs.0)
    }
}

impl SubAssign for DataSize {
    fn sub_assign(&mut self, rhs: DataSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for DataSize {
    type Output = DataSize;
    fn mul(self, rhs: u64) -> DataSize {
        DataSize(self.0 * rhs)
    }
}

impl Div<u64> for DataSize {
    type Output = DataSize;
    fn div(self, rhs: u64) -> DataSize {
        DataSize(self.0 / rhs)
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> Self {
        DataSize(iter.map(|s| s.0).sum())
    }
}

/// Seconds since the trace epoch (midnight before the first trace event).
///
/// The simulation clock. Calendar helpers (`hour_of_day`, `day`) assume the
/// epoch falls on a midnight, which the synthetic trace generator guarantees.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::units::{SimTime, SimDuration};
/// let t = SimTime::from_days_hours(2, 20) + SimDuration::from_secs(120);
/// assert_eq!(t.day(), 2);
/// assert_eq!(t.hour_of_day(), 20);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;

impl SimTime {
    /// The trace epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Creates a time from raw seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates a time at `hour` o'clock on trace day `day`.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub const fn from_days_hours(day: u64, hour: u64) -> Self {
        assert!(hour < 24, "hour of day must be < 24");
        SimTime(day * SECS_PER_DAY + hour * SECS_PER_HOUR)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The trace day this instant falls in (0-based).
    pub const fn day(self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// Hour of day, 0–23.
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % SECS_PER_DAY) / SECS_PER_HOUR
    }

    /// Day of week, 0–6 (the epoch is day-of-week 0).
    pub const fn day_of_week(self) -> u64 {
        self.day() % 7
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration, clamping at the epoch.
    #[must_use]
    pub fn saturating_sub(self, dur: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(dur.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rem = self.0 % SECS_PER_DAY;
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            rem / SECS_PER_HOUR,
            (rem % SECS_PER_HOUR) / 60,
            rem % 60
        )
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// A span of simulated time in whole seconds.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::units::SimDuration;
/// assert_eq!(SimDuration::from_minutes(5).as_secs(), 300);
/// assert_eq!(SimDuration::from_days(3), SimDuration::from_hours(72));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from minutes.
    pub const fn from_minutes(minutes: u64) -> Self {
        SimDuration(minutes * 60)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * SECS_PER_HOUR)
    }

    /// Creates a duration from days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * SECS_PER_DAY)
    }

    /// This duration in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// This duration in (fractional) minutes.
    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// This duration in (fractional) hours.
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / SECS_PER_HOUR as f64
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECS_PER_HOUR {
            write!(f, "{:.2} h", self.as_hours())
        } else if self.0 >= 60 {
            write!(f, "{:.1} min", self.as_minutes())
        } else {
            write!(f, "{} s", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rate_times_segment_is_exact() {
        let seg = BitRate::STREAM_MPEG2_SD * SimDuration::from_minutes(5);
        assert_eq!(seg.as_bits(), 2_418_000_000);
        assert_eq!(seg.as_bytes(), 302_250_000);
    }

    #[test]
    fn ten_gb_peer_holds_thirty_three_segments() {
        // Sanity check for the paper's 10 GB contribution: ~33 five-minute
        // segments at 8.06 Mb/s.
        let seg = BitRate::STREAM_MPEG2_SD * SimDuration::from_minutes(5);
        let per_peer = DataSize::from_gigabytes(10);
        assert_eq!(per_peer.as_bits() / seg.as_bits(), 33);
    }

    #[test]
    fn rate_display_picks_sensible_units() {
        assert_eq!(BitRate::STREAM_MPEG2_SD.to_string(), "8.06 Mb/s");
        assert_eq!(BitRate::from_gbps(4.9).to_string(), "4.90 Gb/s");
        assert_eq!(BitRate::from_bps(12).to_string(), "12 b/s");
    }

    #[test]
    fn size_display_picks_sensible_units() {
        assert_eq!(DataSize::from_terabytes(10).to_string(), "10.00 TB");
        assert_eq!(DataSize::from_gigabytes(3).to_string(), "3.00 GB");
        assert_eq!(DataSize::from_bytes(5).to_string(), "5 B");
    }

    #[test]
    fn size_over_duration_round_trips_rate() {
        let size = BitRate::STREAM_MPEG2_SD * SimDuration::from_hours(2);
        assert_eq!(
            size.over(SimDuration::from_hours(2)),
            BitRate::STREAM_MPEG2_SD
        );
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn rate_over_zero_duration_panics() {
        let _ = DataSize::from_bytes(1).over(SimDuration::ZERO);
    }

    #[test]
    fn calendar_helpers() {
        let t = SimTime::from_days_hours(9, 23);
        assert_eq!(t.day(), 9);
        assert_eq!(t.hour_of_day(), 23);
        assert_eq!(t.day_of_week(), 2);
        assert_eq!((t + SimDuration::from_hours(1)).day(), 10);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(100);
        let late = SimTime::from_secs(400);
        assert_eq!(late.since(early).as_secs(), 300);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn utilization_of_capacity() {
        let used = BitRate::from_mbps(450);
        assert!((used.utilization_of(BitRate::COAX_TV_ALLOCATION) - 0.1363).abs() < 1e-3);
        assert_eq!(used.utilization_of(BitRate::ZERO), 0.0);
    }

    #[test]
    fn display_of_time() {
        assert_eq!(SimTime::from_secs(90_061).to_string(), "d1+01:01:01");
    }

    #[test]
    fn sums() {
        let rates: BitRate = [BitRate::from_mbps(1), BitRate::from_mbps(2)]
            .into_iter()
            .sum();
        assert_eq!(rates, BitRate::from_mbps(3));
        let sizes: DataSize = [DataSize::from_bytes(1), DataSize::from_bytes(2)]
            .into_iter()
            .sum();
        assert_eq!(sizes, DataSize::from_bytes(3));
    }
}
