//! Identifier newtypes for the entities of the cable plant and workload.
//!
//! Using distinct types (rather than bare `u32`s) prevents, e.g., indexing a
//! peer table with a program id. All ids are dense indices assigned at
//! construction time, so they double as `Vec` indices via `index()`.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// The dense index backing this id, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw numeric value.
            pub const fn value(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// A program (file) in the VoD catalog.
    ProgramId,
    "prog"
);
id_type!(
    /// A subscriber of the VoD service. In the PowerInfo schema every
    /// session record names the user that initiated it.
    UserId,
    "user"
);
id_type!(
    /// A set-top box acting as a peer. Every subscriber owns exactly one
    /// STB, so peer ids and user ids are assigned from the same dense range,
    /// but the types are kept distinct: users *request*, peers *store and
    /// serve*.
    PeerId,
    "peer"
);
id_type!(
    /// A coaxial neighborhood together with the headend that serves it.
    /// The paper's hierarchy has one index server per headend and one
    /// headend per neighborhood, so a single id covers both.
    NeighborhoodId,
    "nbhd"
);

/// One 5-minute segment of a program (§IV-B.1: "Programs are divided into 5
/// minute segments and distributed among a collection of peers").
///
/// # Examples
///
/// ```
/// use cablevod_hfc::ids::{ProgramId, SegmentId};
/// let seg = SegmentId::new(ProgramId::new(7), 3);
/// assert_eq!(seg.program(), ProgramId::new(7));
/// assert_eq!(seg.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SegmentId {
    program: ProgramId,
    index: u16,
}

impl SegmentId {
    /// Creates the `index`-th segment id of `program`.
    pub const fn new(program: ProgramId, index: u16) -> Self {
        SegmentId { program, index }
    }

    /// The program this segment belongs to.
    pub const fn program(self) -> ProgramId {
        self.program
    }

    /// Position of this segment within its program, 0-based.
    pub const fn index(self) -> u16 {
        self.index
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.program, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_dense_indices() {
        let p = ProgramId::new(3);
        assert_eq!(p.index(), 3);
        assert_eq!(p.value(), 3);
        assert_eq!(usize::from(p), 3);
        assert_eq!(p.to_string(), "prog3");
    }

    #[test]
    fn segment_ordering_groups_by_program() {
        let a = SegmentId::new(ProgramId::new(1), 9);
        let b = SegmentId::new(ProgramId::new(2), 0);
        assert!(a < b, "segments sort primarily by program id");
        assert_eq!(a.to_string(), "prog1[9]");
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(UserId::new(0).to_string(), "user0");
        assert_eq!(PeerId::new(1).to_string(), "peer1");
        assert_eq!(NeighborhoodId::new(2).to_string(), "nbhd2");
    }
}
