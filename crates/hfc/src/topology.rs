//! The simulated cable plant: operator → headends → coax neighborhoods.
//!
//! [`Topology::build`] realizes §V-B of the paper:
//!
//! > "Upon initialization, the simulator associates users in the trace with
//! > subscribers in a neighborhood. The simulator places subscribers in
//! > neighborhoods uniformly at random. [...] Peer placement is the same for
//! > each execution of the simulation with the same neighborhood size
//! > parameter."
//!
//! Every subscriber owns one set-top box, so users, subscribers and peers
//! are in one-to-one correspondence; the types stay distinct to keep request
//! flow (users) separate from storage/serving (peers).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::coax::{CoaxNetwork, CoaxSpec};
use crate::error::HfcError;
use crate::fiber::{CentralServer, FiberLink};
use crate::ids::{NeighborhoodId, PeerId, UserId};
use crate::stb::{SetTopBox, StbStore, DEFAULT_CONTRIBUTION, DEFAULT_STREAM_SLOTS};
use crate::units::DataSize;

/// Parameters defining a cable plant.
///
/// Use [`TopologyConfig::new`] then the `with_` builder methods for the
/// optional knobs.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::topology::{Topology, TopologyConfig};
/// use cablevod_hfc::units::DataSize;
///
/// let topo = Topology::build(
///     TopologyConfig::new(5_000, 1_000).with_per_peer_storage(DataSize::from_gigabytes(5)),
/// )?;
/// assert_eq!(topo.neighborhood_count(), 5);
/// # Ok::<(), cablevod_hfc::error::HfcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    subscribers: u32,
    neighborhood_size: u32,
    per_peer_storage: DataSize,
    stream_slots: u8,
    coax_spec: CoaxSpec,
    placement_seed: u64,
}

impl TopologyConfig {
    /// Creates a configuration for `subscribers` users in neighborhoods of
    /// `neighborhood_size`, with the paper's default per-peer storage
    /// (10 GB), stream slots (2) and coax capacities.
    pub fn new(subscribers: u32, neighborhood_size: u32) -> Self {
        TopologyConfig {
            subscribers,
            neighborhood_size,
            per_peer_storage: DEFAULT_CONTRIBUTION,
            stream_slots: DEFAULT_STREAM_SLOTS,
            coax_spec: CoaxSpec::paper_default(),
            placement_seed: 0xCAB1E_CAB1E,
        }
    }

    /// Sets the storage each peer contributes to the cooperative cache.
    #[must_use]
    pub fn with_per_peer_storage(mut self, storage: DataSize) -> Self {
        self.per_peer_storage = storage;
        self
    }

    /// Sets the per-STB concurrent stream limit.
    #[must_use]
    pub fn with_stream_slots(mut self, slots: u8) -> Self {
        self.stream_slots = slots;
        self
    }

    /// Sets the coax capacity envelope.
    #[must_use]
    pub fn with_coax_spec(mut self, spec: CoaxSpec) -> Self {
        self.coax_spec = spec;
        self
    }

    /// Overrides the base placement seed. The seed alone determines one
    /// shared subscriber permutation; every neighborhood size slices that
    /// same permutation into consecutive runs, so placement stays a pure
    /// function of `(base seed, neighborhood size)` as §V-B requires while
    /// partitions at different sizes nest along one global order (the
    /// property multi-index trace files rely on).
    #[must_use]
    pub fn with_placement_seed(mut self, seed: u64) -> Self {
        self.placement_seed = seed;
        self
    }

    /// Number of subscribers.
    pub fn subscribers(&self) -> u32 {
        self.subscribers
    }

    /// Target neighborhood size.
    pub fn neighborhood_size(&self) -> u32 {
        self.neighborhood_size
    }

    /// Per-peer storage contribution.
    pub fn per_peer_storage(&self) -> DataSize {
        self.per_peer_storage
    }

    /// Concurrent stream limit per STB.
    pub fn stream_slots(&self) -> u8 {
        self.stream_slots
    }

    /// Coax capacity envelope.
    pub fn coax_spec(&self) -> &CoaxSpec {
        &self.coax_spec
    }
}

/// One coaxial neighborhood: a headend, its index server's domain, and the
/// set of member peers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Neighborhood {
    id: NeighborhoodId,
    members: Vec<PeerId>,
    coax: CoaxNetwork,
    fiber: FiberLink,
}

impl Neighborhood {
    /// This neighborhood's id.
    pub fn id(&self) -> NeighborhoodId {
        self.id
    }

    /// The peers on this coax segment.
    pub fn members(&self) -> &[PeerId] {
        &self.members
    }

    /// Number of member peers.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The neighborhood's coaxial network (shared broadcast medium).
    pub fn coax(&self) -> &CoaxNetwork {
        &self.coax
    }

    /// Mutable access to the coax network for recording broadcasts.
    pub fn coax_mut(&mut self) -> &mut CoaxNetwork {
        &mut self.coax
    }

    /// The fiber link feeding this neighborhood's headend.
    pub fn fiber(&self) -> &FiberLink {
        &self.fiber
    }

    /// Mutable access to the fiber link.
    pub fn fiber_mut(&mut self) -> &mut FiberLink {
        &mut self.fiber
    }
}

/// The full simulated cable plant.
///
/// Owns every set-top box, the neighborhoods with their coax/fiber meters,
/// and the central server. The simulator and index servers mutate it through
/// id-based accessors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    config: TopologyConfig,
    stbs: Vec<SetTopBox>,
    peer_neighborhood: Vec<NeighborhoodId>,
    neighborhoods: Vec<Neighborhood>,
    server: CentralServer,
}

impl Topology {
    /// Builds the plant: one STB per subscriber, subscribers shuffled
    /// uniformly at random into neighborhoods of the configured size.
    ///
    /// The shuffle depends only on the configured base seed — every
    /// neighborhood size slices the *same* subscriber permutation into
    /// consecutive runs. Two simulations with the same neighborhood size see
    /// identical placements regardless of other parameters (§V-B), and
    /// partitions at different sizes agree on the underlying subscriber
    /// order: the users of any neighborhood at size `a` span at most
    /// `ceil(a/b) + 1` neighborhoods at size `b`, which is what lets one
    /// neighborhood-major trace file carry chunk indexes for several
    /// candidate sizes at once.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::InvalidTopology`] if `subscribers` or
    /// `neighborhood_size` is zero.
    pub fn build(config: TopologyConfig) -> Result<Self, HfcError> {
        if config.subscribers == 0 {
            return Err(HfcError::InvalidTopology {
                reason: "zero subscribers".into(),
            });
        }
        if config.neighborhood_size == 0 {
            return Err(HfcError::InvalidTopology {
                reason: "zero neighborhood size".into(),
            });
        }

        let n = config.subscribers as usize;
        let stbs: Vec<SetTopBox> = (0..n)
            .map(|i| {
                SetTopBox::new(
                    PeerId::new(i as u32),
                    config.per_peer_storage,
                    config.stream_slots,
                )
            })
            .collect();

        let mut order: Vec<u32> = (0..config.subscribers).collect();
        order.shuffle(&mut StdRng::seed_from_u64(config.placement_seed));

        let mut neighborhoods = Vec::new();
        let mut peer_neighborhood = vec![NeighborhoodId::new(0); n];
        for (idx, chunk) in order.chunks(config.neighborhood_size as usize).enumerate() {
            let id = NeighborhoodId::new(idx as u32);
            let members: Vec<PeerId> = chunk.iter().map(|&p| PeerId::new(p)).collect();
            for &m in &members {
                peer_neighborhood[m.index()] = id;
            }
            neighborhoods.push(Neighborhood {
                id,
                members,
                coax: CoaxNetwork::new(config.coax_spec),
                fiber: FiberLink::new(id),
            });
        }

        Ok(Topology {
            config,
            stbs,
            peer_neighborhood,
            neighborhoods,
            server: CentralServer::new(),
        })
    }

    /// The configuration this plant was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Number of subscribers (= peers).
    pub fn subscribers(&self) -> u32 {
        self.config.subscribers
    }

    /// Number of neighborhoods.
    pub fn neighborhood_count(&self) -> usize {
        self.neighborhoods.len()
    }

    /// The home peer (set-top box) of `user`.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownUser`] for out-of-range ids.
    pub fn home_peer(&self, user: UserId) -> Result<PeerId, HfcError> {
        if user.index() < self.stbs.len() {
            Ok(PeerId::new(user.value()))
        } else {
            Err(HfcError::UnknownUser { user })
        }
    }

    /// The neighborhood containing `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownPeer`] for out-of-range ids.
    pub fn neighborhood_of_peer(&self, peer: PeerId) -> Result<NeighborhoodId, HfcError> {
        self.peer_neighborhood
            .get(peer.index())
            .copied()
            .ok_or(HfcError::UnknownPeer { peer })
    }

    /// The neighborhood serving `user`.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownUser`] for out-of-range ids.
    pub fn neighborhood_of_user(&self, user: UserId) -> Result<NeighborhoodId, HfcError> {
        let peer = self.home_peer(user)?;
        self.neighborhood_of_peer(peer)
            .map_err(|_| HfcError::UnknownUser { user })
    }

    /// Shared access to a neighborhood.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownNeighborhood`] for out-of-range ids.
    pub fn neighborhood(&self, id: NeighborhoodId) -> Result<&Neighborhood, HfcError> {
        self.neighborhoods
            .get(id.index())
            .ok_or(HfcError::UnknownNeighborhood { neighborhood: id })
    }

    /// Mutable access to a neighborhood.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownNeighborhood`] for out-of-range ids.
    pub fn neighborhood_mut(&mut self, id: NeighborhoodId) -> Result<&mut Neighborhood, HfcError> {
        self.neighborhoods
            .get_mut(id.index())
            .ok_or(HfcError::UnknownNeighborhood { neighborhood: id })
    }

    /// Iterates over all neighborhoods.
    pub fn neighborhoods(&self) -> impl Iterator<Item = &Neighborhood> {
        self.neighborhoods.iter()
    }

    /// Shared access to a set-top box.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownPeer`] for out-of-range ids.
    pub fn stb(&self, peer: PeerId) -> Result<&SetTopBox, HfcError> {
        self.stbs
            .get(peer.index())
            .ok_or(HfcError::UnknownPeer { peer })
    }

    /// Mutable access to a set-top box.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownPeer`] for out-of-range ids.
    pub fn stb_mut(&mut self, peer: PeerId) -> Result<&mut SetTopBox, HfcError> {
        self.stbs
            .get_mut(peer.index())
            .ok_or(HfcError::UnknownPeer { peer })
    }

    /// Total cooperative-cache capacity contributed by a neighborhood's
    /// peers — "the index server understands the total cache size to be the
    /// sum of the storage space contributed for each peer" (§IV-B.3).
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownNeighborhood`] for out-of-range ids.
    pub fn neighborhood_cache_capacity(&self, id: NeighborhoodId) -> Result<DataSize, HfcError> {
        let nbhd = self.neighborhood(id)?;
        Ok(nbhd
            .members
            .iter()
            .map(|&p| self.stbs[p.index()].capacity())
            .sum())
    }

    /// The neighborhood of every peer, as a dense table indexed by
    /// `PeerId::index()` — the borrow-free counterpart of
    /// [`Topology::neighborhood_of_peer`] for hot paths and for shard
    /// workers that hold no `Topology`.
    pub fn peer_neighborhoods(&self) -> &[NeighborhoodId] {
        &self.peer_neighborhood
    }

    /// For every peer, its position within its neighborhood's member list.
    ///
    /// The sharded engine uses this table to translate global [`PeerId`]s
    /// into dense per-shard indices: shard workers hold their
    /// neighborhood's boxes in member order and resolve
    /// `stbs[local_positions[peer]]` without hashing. Positions are only
    /// meaningful relative to the peer's own neighborhood.
    pub fn local_positions(&self) -> Vec<u32> {
        let mut positions = vec![0u32; self.stbs.len()];
        for nbhd in &self.neighborhoods {
            for (pos, &peer) in nbhd.members.iter().enumerate() {
                positions[peer.index()] = pos as u32;
            }
        }
        positions
    }

    /// The central media server farm.
    pub fn server(&self) -> &CentralServer {
        &self.server
    }

    /// Mutable access to the central server.
    pub fn server_mut(&mut self) -> &mut CentralServer {
        &mut self.server
    }
}

impl StbStore for Topology {
    fn stb_mut(&mut self, peer: PeerId) -> Result<&mut SetTopBox, HfcError> {
        Topology::stb_mut(self, peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        Topology::build(TopologyConfig::new(2_500, 1_000)).expect("valid config")
    }

    #[test]
    fn build_partitions_all_subscribers() {
        let topo = small();
        assert_eq!(topo.neighborhood_count(), 3);
        let total: usize = topo.neighborhoods().map(Neighborhood::size).sum();
        assert_eq!(total, 2_500);
        // Sizes are neighborhood_size except the remainder chunk.
        let mut sizes: Vec<usize> = topo.neighborhoods().map(Neighborhood::size).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![500, 1_000, 1_000]);
    }

    #[test]
    fn membership_tables_agree() {
        let topo = small();
        for nbhd in topo.neighborhoods() {
            for &peer in nbhd.members() {
                assert_eq!(topo.neighborhood_of_peer(peer).unwrap(), nbhd.id());
            }
        }
    }

    #[test]
    fn placement_is_deterministic_per_neighborhood_size() {
        let a = Topology::build(TopologyConfig::new(2_000, 500)).unwrap();
        let b = Topology::build(
            TopologyConfig::new(2_000, 500).with_per_peer_storage(DataSize::from_gigabytes(1)),
        )
        .unwrap();
        // Same neighborhood size -> identical placement even though storage
        // differs (§V-B).
        for user in 0..2_000 {
            let u = UserId::new(user);
            assert_eq!(
                a.neighborhood_of_user(u).unwrap(),
                b.neighborhood_of_user(u).unwrap()
            );
        }
        // Different neighborhood size -> (almost surely) different placement.
        let c = Topology::build(TopologyConfig::new(2_000, 400)).unwrap();
        let moved = (0..2_000)
            .filter(|&i| {
                a.neighborhood_of_user(UserId::new(i)).unwrap()
                    != c.neighborhood_of_user(UserId::new(i)).unwrap()
            })
            .count();
        assert!(moved > 0);
    }

    #[test]
    fn placement_is_shuffled_not_contiguous() {
        let topo = small();
        // If placement were contiguous, users 0..1000 would share one
        // neighborhood; a uniform shuffle makes that astronomically
        // unlikely.
        let first = topo.neighborhood_of_user(UserId::new(0)).unwrap();
        let same = (0..1_000)
            .filter(|&i| topo.neighborhood_of_user(UserId::new(i)).unwrap() == first)
            .count();
        assert!(
            same < 600,
            "placement looks contiguous: {same} of first 1000 together"
        );
    }

    #[test]
    fn cache_capacity_sums_members() {
        let topo = Topology::build(
            TopologyConfig::new(1_000, 1_000).with_per_peer_storage(DataSize::from_gigabytes(10)),
        )
        .unwrap();
        let cap = topo
            .neighborhood_cache_capacity(NeighborhoodId::new(0))
            .unwrap();
        assert_eq!(cap, DataSize::from_terabytes(10));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            Topology::build(TopologyConfig::new(0, 10)),
            Err(HfcError::InvalidTopology { .. })
        ));
        assert!(matches!(
            Topology::build(TopologyConfig::new(10, 0)),
            Err(HfcError::InvalidTopology { .. })
        ));
    }

    #[test]
    fn unknown_ids_error() {
        let topo = small();
        assert!(topo.home_peer(UserId::new(9_999)).is_err());
        assert!(topo.stb(PeerId::new(9_999)).is_err());
        assert!(topo.neighborhood(NeighborhoodId::new(99)).is_err());
    }
}
