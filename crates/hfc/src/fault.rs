//! Deterministic fault injection for the cable plant.
//!
//! Real HFC plants are not perfect: amplifier cascades fail, fiber nodes
//! drop off mid-stream, and QAM channels degrade during maintenance or
//! ingress. A [`FaultPlan`] describes such a degraded plant as a set of
//! **timed, replayable events** — segment/fiber-node outages and coax
//! capacity derating, each with an explicit start and recovery time —
//! that the simulation engine overlays on the plant without touching the
//! physical model itself.
//!
//! Two properties make plans safe for the engine's bit-identity
//! contract:
//!
//! * **Determinism** — a plan is plain data. [`FaultPlan::seeded`]
//!   expands a seed into explicit events *once*, eagerly, via the
//!   vendored [`rand`] generator; after construction no randomness
//!   remains, so serial and sharded replays see the very same faults.
//! * **Neighborhood locality** — every event is scoped to one
//!   neighborhood (or to the whole plant, which is equivalent to every
//!   neighborhood at once). [`FaultPlan::timeline`] projects the plan
//!   onto one neighborhood, which is the unit the sharded engine
//!   isolates, so no fault ever couples two shards.
//!
//! Plans are normalized at construction (events sorted by start, end,
//! scope, kind), so two plans describing the same faults compare and
//! serialize identically regardless of declaration order.

use rand::{Rng, SeedableRng, StdRng};
use serde::{Deserialize, Serialize};

use crate::error::HfcError;
use crate::ids::NeighborhoodId;
use crate::units::{SimDuration, SimTime};

/// Full capacity, in permille (the derate scale's fixed point).
pub const FULL_CAPACITY_PERMILLE: u16 = 1_000;

/// What one fault event does to its scope while active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The fiber node / coax segment is down: no segment can be served
    /// and, under enforcing admission, in-flight sessions are
    /// interrupted.
    Outage,
    /// The coax channel budget is reduced to `permille`/1000 of its
    /// healthy capacity (e.g. `500` = half capacity). Valid range is
    /// `1..=999`: zero is an outage, 1000 a no-op.
    Derate {
        /// Remaining capacity in permille of the healthy budget.
        permille: u16,
    },
}

/// One timed fault: a kind, a scope, and a `[start, end)` active window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// The neighborhood affected; `None` means the whole plant.
    pub scope: Option<NeighborhoodId>,
    /// When the fault begins (inclusive).
    pub start: SimTime,
    /// When the fault recovers (exclusive); must be after `start`.
    pub end: SimTime,
    /// What the fault does while active.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether this event applies to `nbhd` (direct scope or plant-wide).
    fn affects(&self, nbhd: NeighborhoodId) -> bool {
        self.scope.is_none_or(|s| s == nbhd)
    }

    /// Normalization sort key: start, end, plant-wide before scoped,
    /// kind last.
    fn sort_key(&self) -> (u64, u64, i64, FaultKind) {
        (
            self.start.as_secs(),
            self.end.as_secs(),
            self.scope.map_or(-1, |s| i64::from(s.value())),
            self.kind,
        )
    }
}

/// A validated, normalized set of [`FaultEvent`]s (see the module docs).
///
/// # Examples
///
/// ```
/// use cablevod_hfc::fault::{FaultEvent, FaultKind, FaultPlan};
/// use cablevod_hfc::ids::NeighborhoodId;
/// use cablevod_hfc::units::SimTime;
///
/// let plan = FaultPlan::new(vec![FaultEvent {
///     scope: Some(NeighborhoodId::new(2)),
///     start: SimTime::from_secs(3_600),
///     end: SimTime::from_secs(7_200),
///     kind: FaultKind::Outage,
/// }])?;
/// let timeline = plan.timeline(NeighborhoodId::new(2));
/// assert_eq!(
///     timeline.outage_at(SimTime::from_secs(4_000)),
///     Some(SimTime::from_secs(7_200)),
/// );
/// assert!(plan.timeline(NeighborhoodId::new(0)).is_empty());
/// # Ok::<(), cablevod_hfc::HfcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The healthy plant: no faults. This is the configuration default,
    /// so existing runs are untouched.
    pub fn empty() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Builds a plan from explicit events, validating and normalizing
    /// them.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::InvalidFaultPlan`] when an event's window is
    /// empty or inverted, or a derate's permille is outside `1..=999`.
    pub fn new(mut events: Vec<FaultEvent>) -> Result<Self, HfcError> {
        for ev in &events {
            if ev.start >= ev.end {
                return Err(HfcError::InvalidFaultPlan {
                    reason: format!(
                        "fault window [{}s, {}s) is empty",
                        ev.start.as_secs(),
                        ev.end.as_secs()
                    ),
                });
            }
            if let FaultKind::Derate { permille } = ev.kind {
                if permille == 0 || permille >= FULL_CAPACITY_PERMILLE {
                    return Err(HfcError::InvalidFaultPlan {
                        reason: format!(
                            "derate permille {permille} outside 1..=999 \
                             (0 is an outage, 1000 a no-op)"
                        ),
                    });
                }
            }
        }
        events.sort_by_key(FaultEvent::sort_key);
        Ok(FaultPlan { events })
    }

    /// Expands `seed` into an explicit plan: `outages` node outages
    /// (5–60 minutes each) and `derates` capacity deratings (1–6 hours
    /// at 250–750 permille), uniformly placed over `neighborhoods` and
    /// the `horizon`. Expansion is eager and deterministic — the
    /// returned plan is plain data and replays identically everywhere.
    pub fn seeded(
        seed: u64,
        neighborhoods: u32,
        horizon: SimDuration,
        outages: u32,
        derates: u32,
    ) -> Self {
        let horizon = horizon.as_secs();
        if neighborhoods == 0 || horizon < 2 {
            return FaultPlan::empty();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity((outages + derates) as usize);
        // Draw order is part of the format: outages first, then derates,
        // each as (neighborhood, start, duration[, permille]).
        for _ in 0..outages {
            let nbhd = rng.random_range(0..neighborhoods);
            let dur = rng.random_range(300u64..=3_600).min(horizon - 1);
            let start = rng.random_range(0..horizon - dur);
            events.push(FaultEvent {
                scope: Some(NeighborhoodId::new(nbhd)),
                start: SimTime::from_secs(start),
                end: SimTime::from_secs(start + dur),
                kind: FaultKind::Outage,
            });
        }
        for _ in 0..derates {
            let nbhd = rng.random_range(0..neighborhoods);
            let dur = rng.random_range(3_600u64..=21_600).min(horizon - 1);
            let start = rng.random_range(0..horizon - dur);
            let permille = rng.random_range(250u16..=750);
            events.push(FaultEvent {
                scope: Some(NeighborhoodId::new(nbhd)),
                start: SimTime::from_secs(start),
                end: SimTime::from_secs(start + dur),
                kind: FaultKind::Derate { permille },
            });
        }
        FaultPlan::new(events).expect("seeded events are valid by construction")
    }

    /// Whether the plan has no events (the healthy plant).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The normalized events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Projects the plan onto one neighborhood: the events affecting it
    /// (scoped or plant-wide), compiled into query-ready interval sets.
    pub fn timeline(&self, nbhd: NeighborhoodId) -> FaultTimeline {
        let mut outages: Vec<(u64, u64)> = Vec::new();
        let mut derates: Vec<(u64, u64, u16)> = Vec::new();
        for ev in self.events.iter().filter(|ev| ev.affects(nbhd)) {
            let span = (ev.start.as_secs(), ev.end.as_secs());
            match ev.kind {
                FaultKind::Outage => outages.push(span),
                FaultKind::Derate { permille } => derates.push((span.0, span.1, permille)),
            }
        }
        // Merge overlapping outages into disjoint, sorted intervals so
        // point queries can binary-search.
        outages.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(outages.len());
        for (start, end) in outages {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        FaultTimeline {
            outages: merged,
            derates,
        }
    }
}

/// One neighborhood's view of a [`FaultPlan`]: disjoint outage intervals
/// and (possibly overlapping) derate intervals, each `[start, end)` in
/// simulation seconds.
#[derive(Debug, Clone, Default)]
pub struct FaultTimeline {
    outages: Vec<(u64, u64)>,
    derates: Vec<(u64, u64, u16)>,
}

impl FaultTimeline {
    /// Whether no fault ever touches this neighborhood.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty() && self.derates.is_empty()
    }

    /// If an outage is active at `t`, the time it recovers.
    pub fn outage_at(&self, t: SimTime) -> Option<SimTime> {
        let t = t.as_secs();
        let i = self.outages.partition_point(|&(_, end)| end <= t);
        self.outages
            .get(i)
            .filter(|&&(start, _)| start <= t)
            .map(|&(_, end)| SimTime::from_secs(end))
    }

    /// Remaining coax capacity at `t` in permille of the healthy budget:
    /// 1000 when no derate is active, otherwise the most severe (lowest)
    /// active derate. An active outage reads as zero.
    pub fn capacity_permille_at(&self, t: SimTime) -> u16 {
        if self.outage_at(t).is_some() {
            return 0;
        }
        let secs = t.as_secs();
        self.derates
            .iter()
            .filter(|&&(start, end, _)| start <= secs && secs < end)
            .map(|&(_, _, permille)| permille)
            .min()
            .unwrap_or(FULL_CAPACITY_PERMILLE)
    }

    /// Recovery instants of the merged outage intervals, in time order
    /// (one per disjoint outage), for time-to-recover measurement.
    pub fn outage_ends(&self) -> impl Iterator<Item = SimTime> + '_ {
        self.outages.iter().map(|&(_, end)| SimTime::from_secs(end))
    }

    /// Total seconds this neighborhood spends in outage (merged, so
    /// overlapping events are not double-counted).
    pub fn outage_secs(&self) -> u64 {
        self.outages.iter().map(|&(start, end)| end - start).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(i: u32) -> NeighborhoodId {
        NeighborhoodId::new(i)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn outage(scope: Option<u32>, start: u64, end: u64) -> FaultEvent {
        FaultEvent {
            scope: scope.map(NeighborhoodId::new),
            start: t(start),
            end: t(end),
            kind: FaultKind::Outage,
        }
    }

    fn derate(scope: Option<u32>, start: u64, end: u64, permille: u16) -> FaultEvent {
        FaultEvent {
            scope: scope.map(NeighborhoodId::new),
            start: t(start),
            end: t(end),
            kind: FaultKind::Derate { permille },
        }
    }

    #[test]
    fn empty_plan_is_the_healthy_plant() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        let tl = plan.timeline(nb(0));
        assert!(tl.is_empty());
        assert_eq!(tl.outage_at(t(0)), None);
        assert_eq!(tl.capacity_permille_at(t(0)), FULL_CAPACITY_PERMILLE);
        assert_eq!(tl.outage_secs(), 0);
    }

    #[test]
    fn invalid_events_are_rejected() {
        let err = FaultPlan::new(vec![outage(Some(0), 100, 100)]).unwrap_err();
        assert!(matches!(err, HfcError::InvalidFaultPlan { .. }), "{err}");
        assert!(FaultPlan::new(vec![outage(Some(0), 100, 50)]).is_err());
        assert!(FaultPlan::new(vec![derate(Some(0), 0, 10, 0)]).is_err());
        assert!(FaultPlan::new(vec![derate(Some(0), 0, 10, 1_000)]).is_err());
        assert!(FaultPlan::new(vec![derate(Some(0), 0, 10, 999)]).is_ok());
    }

    #[test]
    fn normalization_makes_declaration_order_irrelevant() {
        let a = FaultPlan::new(vec![
            outage(Some(1), 200, 300),
            derate(None, 0, 100, 500),
            outage(Some(0), 200, 300),
        ])
        .expect("valid");
        let b = FaultPlan::new(vec![
            outage(Some(0), 200, 300),
            outage(Some(1), 200, 300),
            derate(None, 0, 100, 500),
        ])
        .expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn timelines_scope_events_and_merge_outages() {
        let plan = FaultPlan::new(vec![
            outage(Some(1), 100, 200),
            outage(Some(1), 150, 400),
            outage(None, 1_000, 1_100),
            derate(Some(1), 50, 500, 600),
            derate(Some(2), 0, 10, 300),
        ])
        .expect("valid");

        let tl = plan.timeline(nb(1));
        // [100,200) and [150,400) merge into [100,400).
        assert_eq!(tl.outage_at(t(99)), None);
        assert_eq!(tl.outage_at(t(100)), Some(t(400)));
        assert_eq!(tl.outage_at(t(399)), Some(t(400)));
        assert_eq!(tl.outage_at(t(400)), None);
        assert_eq!(tl.outage_at(t(1_050)), Some(t(1_100)), "plant-wide applies");
        assert_eq!(tl.outage_secs(), 300 + 100);
        assert_eq!(tl.outage_ends().collect::<Vec<_>>(), vec![t(400), t(1_100)]);
        // Derate active outside the outage; outage reads as zero.
        assert_eq!(tl.capacity_permille_at(t(60)), 600);
        assert_eq!(tl.capacity_permille_at(t(150)), 0, "outage wins");
        assert_eq!(tl.capacity_permille_at(t(450)), 600);
        assert_eq!(tl.capacity_permille_at(t(500)), FULL_CAPACITY_PERMILLE);

        // Neighborhood 0 only sees the plant-wide outage.
        let tl0 = plan.timeline(nb(0));
        assert_eq!(tl0.outage_at(t(150)), None);
        assert_eq!(tl0.outage_at(t(1_000)), Some(t(1_100)));
        assert_eq!(tl0.capacity_permille_at(t(60)), FULL_CAPACITY_PERMILLE);
    }

    #[test]
    fn overlapping_derates_take_the_most_severe() {
        let plan = FaultPlan::new(vec![
            derate(Some(0), 0, 100, 700),
            derate(Some(0), 50, 150, 400),
        ])
        .expect("valid");
        let tl = plan.timeline(nb(0));
        assert_eq!(tl.capacity_permille_at(t(25)), 700);
        assert_eq!(tl.capacity_permille_at(t(75)), 400);
        assert_eq!(tl.capacity_permille_at(t(125)), 400);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        let horizon = SimDuration::from_days(28);
        let a = FaultPlan::seeded(42, 5, horizon, 20, 5);
        let b = FaultPlan::seeded(42, 5, horizon, 20, 5);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 25);
        let c = FaultPlan::seeded(43, 5, horizon, 20, 5);
        assert_ne!(a, c, "different seeds differ");
        for ev in a.events() {
            assert!(ev.start < ev.end);
            assert!(ev.end.as_secs() <= horizon.as_secs());
            assert!(ev.scope.is_some());
            if let FaultKind::Derate { permille } = ev.kind {
                assert!((250..=750).contains(&permille));
            }
        }
        assert!(FaultPlan::seeded(1, 0, horizon, 5, 5).is_empty());
        assert!(FaultPlan::seeded(1, 5, SimDuration::ZERO, 5, 5).is_empty());
    }
}
