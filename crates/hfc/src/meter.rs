//! Time-bucketed bandwidth accounting.
//!
//! The paper's headline metric is "the average data rate that the various
//! architecture components must sustain" per hour of the day (§V-A, Fig 7),
//! evaluated over the 7–11 PM peak window with 5 %/95 % quantile error bars
//! (Figs 8–10). [`RateMeter`] accumulates transferred bits into fixed-length
//! time buckets (one hour by default) and answers exactly those queries.

use serde::{Deserialize, Serialize};

use crate::units::{BitRate, DataSize, SimDuration, SimTime, SECS_PER_DAY};

/// First hour (inclusive) of the paper's peak window: 7 PM.
pub const PEAK_START_HOUR: u64 = 19;
/// Last hour (exclusive) of the paper's peak window: 11 PM.
pub const PEAK_END_HOUR: u64 = 23;

/// Accumulates transferred data into fixed-length time buckets.
///
/// Transfers spanning a bucket boundary are split proportionally, so rates
/// are exact regardless of how transfers align with bucket edges.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::meter::RateMeter;
/// use cablevod_hfc::units::{BitRate, DataSize, SimTime, SimDuration};
///
/// let mut meter = RateMeter::hourly();
/// let start = SimTime::from_days_hours(0, 20);
/// let size = BitRate::STREAM_MPEG2_SD * SimDuration::from_minutes(5);
/// meter.record(start, start + SimDuration::from_minutes(5), size);
/// let rate = meter.bucket_rate(meter.bucket_of(start));
/// assert!(rate.as_bps() > 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateMeter {
    bucket_len: SimDuration,
    bits: Vec<u64>,
    total: DataSize,
    transfers: u64,
}

impl RateMeter {
    /// Creates a meter with the given bucket length.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_len` is zero.
    pub fn new(bucket_len: SimDuration) -> Self {
        assert!(bucket_len.as_secs() > 0, "bucket length must be positive");
        RateMeter {
            bucket_len,
            bits: Vec::new(),
            total: DataSize::ZERO,
            transfers: 0,
        }
    }

    /// Creates a meter with one-hour buckets (the paper's granularity).
    pub fn hourly() -> Self {
        RateMeter::new(SimDuration::from_hours(1))
    }

    /// Creates a meter with 15-minute buckets (used for the Fig 2 style
    /// "sessions in the last 15 minutes" analyses).
    pub fn quarter_hourly() -> Self {
        RateMeter::new(SimDuration::from_minutes(15))
    }

    /// The configured bucket length.
    pub fn bucket_len(&self) -> SimDuration {
        self.bucket_len
    }

    /// Total data recorded.
    pub fn total(&self) -> DataSize {
        self.total
    }

    /// Number of `record` calls.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Index of the bucket containing `t`.
    pub fn bucket_of(&self, t: SimTime) -> usize {
        (t.as_secs() / self.bucket_len.as_secs()) as usize
    }

    /// Number of buckets that have ever been touched (the highest recorded
    /// instant determines the length).
    pub fn bucket_count(&self) -> usize {
        self.bits.len()
    }

    /// Records a transfer of `size` spread uniformly over `[start, end)`.
    /// A zero-length transfer is attributed entirely to `start`'s bucket.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(&mut self, start: SimTime, end: SimTime, size: DataSize) {
        assert!(end >= start, "transfer must not end before it starts");
        self.total += size;
        self.transfers += 1;
        let bits = size.as_bits();
        if bits == 0 {
            return;
        }
        let dur = end.as_secs() - start.as_secs();
        if dur == 0 {
            let b = self.bucket_of(start);
            self.grow_to(b + 1);
            self.bits[b] += bits;
            return;
        }
        let blen = self.bucket_len.as_secs();
        let first = start.as_secs() / blen;
        let last = (end.as_secs() - 1) / blen;
        self.grow_to(last as usize + 1);
        let mut assigned = 0u64;
        for bucket in first..last {
            let bucket_end = (bucket + 1) * blen;
            let overlap = bucket_end - start.as_secs().max(bucket * blen);
            let share = bits * overlap / dur;
            self.bits[bucket as usize] += share;
            assigned += share;
        }
        // Remainder (including rounding residue) lands in the final bucket
        // so that recorded bits always sum exactly to `size`.
        self.bits[last as usize] += bits - assigned;
    }

    /// Average rate in bucket `bucket` (zero for untouched buckets).
    pub fn bucket_rate(&self, bucket: usize) -> BitRate {
        let bits = self.bits.get(bucket).copied().unwrap_or(0);
        BitRate::from_bps(bits / self.bucket_len.as_secs())
    }

    /// Data volume in bucket `bucket`.
    pub fn bucket_size(&self, bucket: usize) -> DataSize {
        DataSize::from_bits(self.bits.get(bucket).copied().unwrap_or(0))
    }

    /// Mean rate for each hour of the day, averaged across all days that the
    /// meter covers (Fig 7). Requires hourly buckets.
    ///
    /// # Panics
    ///
    /// Panics if the meter does not use one-hour buckets.
    pub fn hourly_profile(&self) -> [BitRate; 24] {
        assert_eq!(
            self.bucket_len,
            SimDuration::from_hours(1),
            "hourly_profile requires one-hour buckets"
        );
        let mut sums = [0u64; 24];
        let days = self.bits.len().div_ceil(24).max(1) as u64;
        for (i, bits) in self.bits.iter().enumerate() {
            sums[i % 24] += bits;
        }
        let mut out = [BitRate::ZERO; 24];
        for (h, sum) in sums.iter().enumerate() {
            out[h] = BitRate::from_bps(sum / (days * 3600));
        }
        out
    }

    /// Per-bucket rates inside the daily window `[start_hour, end_hour)` for
    /// every day in `[first_day, last_day)` — the samples behind the paper's
    /// averages and 5 %/95 % error bars.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty, reversed, or not within a day, or if
    /// the bucket length does not divide one hour.
    pub fn window_samples(
        &self,
        first_day: u64,
        last_day: u64,
        start_hour: u64,
        end_hour: u64,
    ) -> Vec<BitRate> {
        assert!(
            start_hour < end_hour && end_hour <= 24,
            "invalid daily window"
        );
        assert_eq!(
            3600 % self.bucket_len.as_secs(),
            0,
            "bucket length must divide one hour for window queries"
        );
        let per_hour = (3600 / self.bucket_len.as_secs()) as usize;
        let mut out = Vec::new();
        for day in first_day..last_day {
            for hour in start_hour..end_hour {
                let base = self.bucket_of(SimTime::from_secs(day * SECS_PER_DAY + hour * 3600));
                for k in 0..per_hour {
                    out.push(self.bucket_rate(base + k));
                }
            }
        }
        out
    }

    /// Summary statistics over the paper's 7–11 PM peak window.
    pub fn peak_stats(&self, first_day: u64, last_day: u64) -> RateStats {
        RateStats::from_samples(&self.window_samples(
            first_day,
            last_day,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ))
    }

    /// Folds `other` into `self` bucket by bucket.
    ///
    /// Because [`RateMeter::record`] is commutative — each transfer's
    /// bucket split depends only on that transfer — merging per-shard
    /// meters reconstructs *exactly* the meter a single serial run would
    /// have produced, regardless of the order transfers were recorded in.
    /// This is the primitive the sharded simulation engine uses to rebuild
    /// the shared central-server meter from per-neighborhood meters.
    ///
    /// # Panics
    ///
    /// Panics if the bucket lengths differ.
    pub fn merge(&mut self, other: &RateMeter) {
        assert_eq!(
            self.bucket_len, other.bucket_len,
            "cannot merge meters with different bucket lengths"
        );
        self.grow_to(other.bits.len());
        for (mine, theirs) in self.bits.iter_mut().zip(&other.bits) {
            *mine += theirs;
        }
        self.total += other.total;
        self.transfers += other.transfers;
    }

    fn grow_to(&mut self, len: usize) {
        if self.bits.len() < len {
            self.bits.resize(len, 0);
        }
    }
}

/// Mean / quantile summary of a set of rate samples.
///
/// Matches the presentation of the paper's bar charts: a mean bar with error
/// bars demarcating the 5 % and 95 % quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateStats {
    /// Mean rate across samples.
    pub mean: BitRate,
    /// 5 % quantile.
    pub q05: BitRate,
    /// 95 % quantile.
    pub q95: BitRate,
    /// Largest sample.
    pub max: BitRate,
    /// Number of samples aggregated.
    pub samples: usize,
}

impl RateStats {
    /// Computes statistics from raw samples. Empty input yields all-zero
    /// statistics.
    pub fn from_samples(samples: &[BitRate]) -> Self {
        if samples.is_empty() {
            return RateStats {
                mean: BitRate::ZERO,
                q05: BitRate::ZERO,
                q95: BitRate::ZERO,
                max: BitRate::ZERO,
                samples: 0,
            };
        }
        let mut sorted: Vec<u64> = samples.iter().map(|r| r.as_bps()).collect();
        sorted.sort_unstable();
        let mean = sorted.iter().sum::<u64>() / sorted.len() as u64;
        RateStats {
            mean: BitRate::from_bps(mean),
            q05: BitRate::from_bps(quantile(&sorted, 0.05)),
            q95: BitRate::from_bps(quantile(&sorted, 0.95)),
            max: BitRate::from_bps(*sorted.last().expect("non-empty")),
            samples: sorted.len(),
        }
    }
}

impl std::fmt::Display for RateStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (5%: {}, 95%: {}, n={})",
            self.mean, self.q05, self.q95, self.samples
        )
    }
}

/// Linear-interpolated quantile of pre-sorted data.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.is_empty() {
        return 0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        (sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: u64) -> DataSize {
        DataSize::from_bytes(n * 1_000_000)
    }

    #[test]
    fn record_within_one_bucket() {
        let mut m = RateMeter::hourly();
        let t = SimTime::from_days_hours(0, 20);
        m.record(t, t + SimDuration::from_minutes(5), mb(300));
        assert_eq!(m.bucket_size(20), mb(300));
        assert_eq!(m.bucket_rate(20).as_bps(), mb(300).as_bits() / 3600);
    }

    #[test]
    fn record_splits_proportionally_across_boundary() {
        let mut m = RateMeter::hourly();
        // 30 min before and 30 min after the hour boundary.
        let start = SimTime::from_secs(3600 - 1800);
        let end = SimTime::from_secs(3600 + 1800);
        m.record(start, end, DataSize::from_bits(1_000_000));
        assert_eq!(m.bucket_size(0).as_bits(), 500_000);
        assert_eq!(m.bucket_size(1).as_bits(), 500_000);
    }

    #[test]
    fn split_conserves_total_bits_exactly() {
        let mut m = RateMeter::new(SimDuration::from_minutes(15));
        // Awkward span and size that do not divide evenly.
        m.record(
            SimTime::from_secs(137),
            SimTime::from_secs(137 + 3777),
            DataSize::from_bits(999_999_937),
        );
        let sum: u64 = (0..m.bucket_count())
            .map(|b| m.bucket_size(b).as_bits())
            .sum();
        assert_eq!(sum, 999_999_937);
        assert_eq!(m.total().as_bits(), 999_999_937);
    }

    #[test]
    fn zero_duration_transfer_lands_in_start_bucket() {
        let mut m = RateMeter::hourly();
        let t = SimTime::from_days_hours(1, 3);
        m.record(t, t, mb(1));
        assert_eq!(m.bucket_size(27), mb(1));
    }

    #[test]
    fn hourly_profile_averages_across_days() {
        let mut m = RateMeter::hourly();
        for day in 0..4u64 {
            let t = SimTime::from_days_hours(day, 20);
            m.record(
                t,
                t + SimDuration::from_hours(1),
                DataSize::from_bits(3600 * 1000),
            );
        }
        let profile = m.hourly_profile();
        // 4 days recorded; bits only at hour 20. Bucket count is 3*24+21 →
        // div_ceil gives 4 days.
        assert_eq!(profile[20].as_bps(), 1000);
        assert_eq!(profile[19].as_bps(), 0);
    }

    #[test]
    fn peak_window_stats() {
        let mut m = RateMeter::hourly();
        // Two days, constant 1000 b/s during 19–23 on each.
        for day in 0..2u64 {
            for hour in PEAK_START_HOUR..PEAK_END_HOUR {
                let t = SimTime::from_days_hours(day, hour);
                m.record(
                    t,
                    t + SimDuration::from_hours(1),
                    DataSize::from_bits(3600 * 1000),
                );
            }
        }
        let stats = m.peak_stats(0, 2);
        assert_eq!(stats.samples, 8);
        assert_eq!(stats.mean.as_bps(), 1000);
        assert_eq!(stats.q05.as_bps(), 1000);
        assert_eq!(stats.q95.as_bps(), 1000);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile(&sorted, 0.0), 1);
        assert_eq!(quantile(&sorted, 1.0), 100);
        assert_eq!(quantile(&sorted, 0.5), 51); // midpoint of 1..=100 at pos 49.5 -> 50.5 rounds to 51? (50*0.5+51*0.5 = 50.5 -> 51)
    }

    #[test]
    fn stats_from_empty_is_zero() {
        let s = RateStats::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean, BitRate::ZERO);
    }

    #[test]
    fn display_of_stats() {
        let s = RateStats::from_samples(&[BitRate::from_mbps(10), BitRate::from_mbps(20)]);
        let text = s.to_string();
        assert!(text.contains("n=2"), "{text}");
    }

    #[test]
    #[should_panic(expected = "must not end before")]
    fn reversed_transfer_panics() {
        let mut m = RateMeter::hourly();
        m.record(SimTime::from_secs(10), SimTime::from_secs(5), mb(1));
    }

    /// Splitting one transfer stream across two meters and merging must
    /// reproduce the single-meter result exactly, including transfers that
    /// straddle bucket boundaries with non-dividing remainders.
    #[test]
    fn merge_reconstructs_serial_meter_exactly() {
        let transfers: Vec<(u64, u64, u64)> = vec![
            (0, 100, 1_000),
            (3_599, 3_601, 999_999_937), // boundary straddle, awkward size
            (137, 137 + 3_777, 123_456_789),
            (7_200, 7_200, 5_000), // zero-duration
            (10, 50_000, 42),      // long span, tiny size
        ];
        let mut serial = RateMeter::hourly();
        let mut a = RateMeter::hourly();
        let mut b = RateMeter::hourly();
        for (i, &(s, e, bits)) in transfers.iter().enumerate() {
            let (s, e, size) = (
                SimTime::from_secs(s),
                SimTime::from_secs(e),
                DataSize::from_bits(bits),
            );
            serial.record(s, e, size);
            // Interleave between the two "shards" in a different order
            // than serial sees them.
            if i % 2 == 0 { &mut a } else { &mut b }.record(s, e, size);
        }
        let mut merged = RateMeter::hourly();
        merged.merge(&b); // reverse shard order on purpose
        merged.merge(&a);
        assert_eq!(merged.total(), serial.total());
        assert_eq!(merged.transfers(), serial.transfers());
        assert_eq!(merged.bucket_count(), serial.bucket_count());
        for bucket in 0..serial.bucket_count() {
            assert_eq!(
                merged.bucket_size(bucket),
                serial.bucket_size(bucket),
                "bucket {bucket}"
            );
        }
    }

    #[test]
    fn merge_with_empty_meters_is_identity() {
        let mut m = RateMeter::hourly();
        m.record(
            SimTime::from_days_hours(0, 20),
            SimTime::from_days_hours(0, 21),
            mb(7),
        );
        let snapshot = (m.total(), m.transfers(), m.bucket_count());

        // Empty into populated: no change.
        m.merge(&RateMeter::hourly());
        assert_eq!((m.total(), m.transfers(), m.bucket_count()), snapshot);

        // Populated into empty: exact copy.
        let mut empty = RateMeter::hourly();
        empty.merge(&m);
        assert_eq!(empty.total(), m.total());
        assert_eq!(empty.transfers(), m.transfers());
        for bucket in 0..m.bucket_count() {
            assert_eq!(empty.bucket_size(bucket), m.bucket_size(bucket));
        }

        // Empty into empty: still empty.
        let mut both = RateMeter::hourly();
        both.merge(&RateMeter::hourly());
        assert_eq!(both.bucket_count(), 0);
        assert_eq!(both.total(), DataSize::ZERO);
    }

    #[test]
    #[should_panic(expected = "different bucket lengths")]
    fn merge_rejects_mismatched_bucket_lengths() {
        let mut hourly = RateMeter::hourly();
        hourly.merge(&RateMeter::quarter_hourly());
    }
}
