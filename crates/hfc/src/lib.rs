//! # cablevod-hfc — the hybrid fiber-coax cable plant substrate
//!
//! Models the physical infrastructure of §II of *"Deploying Video-on-Demand
//! Services on Cable Networks"* (Allen, Zhao, Wolski — ICDCS 2007):
//!
//! * the three-tier hierarchy **cable operator → headends → coax
//!   neighborhoods** ([`topology`]);
//! * the **broadcast, rate-limited coaxial** last mile ([`coax`]);
//! * the switched **fiber** network and central media servers ([`fiber`]);
//! * always-on **set-top boxes** with bounded storage and two stream slots
//!   ([`stb`]);
//! * 5-minute **program segmentation** ([`segment`]);
//! * strongly-typed **units** and **ids** ([`units`], [`ids`]) and
//!   hour-of-day **bandwidth meters** ([`meter`]).
//!
//! Higher layers (`cablevod-cache`, `cablevod-sim`) mutate a [`topology::Topology`]
//! through id-based accessors; this crate owns all physical state.
//!
//! # Examples
//!
//! ```
//! use cablevod_hfc::topology::{Topology, TopologyConfig};
//! use cablevod_hfc::units::DataSize;
//! use cablevod_hfc::ids::UserId;
//!
//! # fn main() -> Result<(), cablevod_hfc::error::HfcError> {
//! let mut topo = Topology::build(TopologyConfig::new(3_000, 1_000))?;
//! let nbhd = topo.neighborhood_of_user(UserId::new(42))?;
//! assert_eq!(topo.neighborhood_cache_capacity(nbhd)?, DataSize::from_terabytes(10));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channels;
pub mod coax;
pub mod error;
pub mod fault;
pub mod fiber;
pub mod ids;
pub mod meter;
pub mod segment;
pub mod stb;
pub mod topology;
pub mod units;

pub use channels::ChannelPlan;
pub use error::HfcError;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultTimeline};
pub use ids::{NeighborhoodId, PeerId, ProgramId, SegmentId, UserId};
pub use meter::{RateMeter, RateStats};
pub use segment::Segmenter;
pub use stb::{SetTopBox, StbStore};
pub use topology::{Neighborhood, Topology, TopologyConfig};
pub use units::{BitRate, DataSize, SimDuration, SimTime};
