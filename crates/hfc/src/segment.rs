//! Program segmentation (§IV-B.1).
//!
//! Programs are divided into fixed-length segments (5 minutes in the paper)
//! which are the unit of placement and transmission. [`Segmenter`] converts
//! between program lengths, segment counts and segment sizes at a given
//! stream rate.

use serde::{Deserialize, Serialize};

use crate::ids::{ProgramId, SegmentId};
use crate::units::{BitRate, DataSize, SimDuration};

/// Converts program lengths into segment counts and sizes.
///
/// A `Segmenter` is parameterized by the segment length (the paper uses
/// 5 minutes) and the stream encoding rate (8.06 Mb/s). The final segment of
/// a program may be shorter than the nominal length; its size is pro-rated.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::segment::Segmenter;
/// use cablevod_hfc::units::SimDuration;
///
/// let seg = Segmenter::paper_default();
/// // A 100-minute movie becomes 20 five-minute segments.
/// assert_eq!(seg.segment_count(SimDuration::from_minutes(100)), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segmenter {
    segment_len: SimDuration,
    stream_rate: BitRate,
}

impl Segmenter {
    /// Creates a segmenter with explicit segment length and stream rate.
    ///
    /// # Panics
    ///
    /// Panics if `segment_len` is zero.
    pub fn new(segment_len: SimDuration, stream_rate: BitRate) -> Self {
        assert!(segment_len.as_secs() > 0, "segment length must be positive");
        Segmenter {
            segment_len,
            stream_rate,
        }
    }

    /// The paper's configuration: 5-minute segments at 8.06 Mb/s.
    pub fn paper_default() -> Self {
        Segmenter::new(SimDuration::from_minutes(5), BitRate::STREAM_MPEG2_SD)
    }

    /// The nominal segment length.
    pub fn segment_len(&self) -> SimDuration {
        self.segment_len
    }

    /// The stream encoding rate.
    pub fn stream_rate(&self) -> BitRate {
        self.stream_rate
    }

    /// Number of segments a program of length `len` is divided into.
    /// A zero-length program has zero segments.
    pub fn segment_count(&self, len: SimDuration) -> u16 {
        len.as_secs().div_ceil(self.segment_len.as_secs()) as u16
    }

    /// Play length of segment `index` of a program of length `len` — the
    /// nominal segment length except for a shorter final segment.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `len`.
    pub fn segment_play_len(&self, len: SimDuration, index: u16) -> SimDuration {
        let count = self.segment_count(len);
        assert!(
            index < count,
            "segment index {index} out of range (program has {count})"
        );
        let start = self.segment_len.as_secs() * u64::from(index);
        SimDuration::from_secs((len.as_secs() - start).min(self.segment_len.as_secs()))
    }

    /// Storage size of segment `index` of a program of length `len`.
    pub fn segment_size(&self, len: SimDuration, index: u16) -> DataSize {
        self.stream_rate * self.segment_play_len(len, index)
    }

    /// Total storage size of a program of length `len`.
    pub fn program_size(&self, len: SimDuration) -> DataSize {
        self.stream_rate * len
    }

    /// The segment playing at offset `offset` into the program, or `None`
    /// past the end.
    pub fn segment_at(&self, len: SimDuration, offset: SimDuration) -> Option<u16> {
        if offset >= len {
            return None;
        }
        Some((offset.as_secs() / self.segment_len.as_secs()) as u16)
    }

    /// Iterator over the segment ids of `program` with length `len`.
    pub fn segments_of(
        &self,
        program: ProgramId,
        len: SimDuration,
    ) -> impl Iterator<Item = SegmentId> + use<> {
        (0..self.segment_count(len)).map(move |i| SegmentId::new(program, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_has_no_runt_segment() {
        let s = Segmenter::paper_default();
        let len = SimDuration::from_minutes(100);
        assert_eq!(s.segment_count(len), 20);
        for i in 0..20 {
            assert_eq!(s.segment_play_len(len, i), SimDuration::from_minutes(5));
        }
    }

    #[test]
    fn final_segment_is_pro_rated() {
        let s = Segmenter::paper_default();
        let len = SimDuration::from_minutes(47); // 9 full + one 2-minute runt
        assert_eq!(s.segment_count(len), 10);
        assert_eq!(s.segment_play_len(len, 9), SimDuration::from_minutes(2));
        assert_eq!(
            s.segment_size(len, 9),
            BitRate::STREAM_MPEG2_SD * SimDuration::from_minutes(2)
        );
    }

    #[test]
    fn segment_sizes_sum_to_program_size() {
        let s = Segmenter::paper_default();
        for minutes in [1, 22, 45, 47, 100, 118] {
            let len = SimDuration::from_minutes(minutes);
            let total: DataSize = (0..s.segment_count(len))
                .map(|i| s.segment_size(len, i))
                .sum();
            assert_eq!(total, s.program_size(len), "length {minutes} min");
        }
    }

    #[test]
    fn segment_at_offset() {
        let s = Segmenter::paper_default();
        let len = SimDuration::from_minutes(30);
        assert_eq!(s.segment_at(len, SimDuration::ZERO), Some(0));
        assert_eq!(s.segment_at(len, SimDuration::from_secs(299)), Some(0));
        assert_eq!(s.segment_at(len, SimDuration::from_secs(300)), Some(1));
        assert_eq!(s.segment_at(len, SimDuration::from_minutes(30)), None);
    }

    #[test]
    fn segments_of_enumerates_ids() {
        let s = Segmenter::paper_default();
        let ids: Vec<_> = s
            .segments_of(ProgramId::new(4), SimDuration::from_minutes(12))
            .collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[2], SegmentId::new(ProgramId::new(4), 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_segment_panics() {
        let s = Segmenter::paper_default();
        let _ = s.segment_play_len(SimDuration::from_minutes(10), 2);
    }

    #[test]
    fn zero_length_program_has_no_segments() {
        let s = Segmenter::paper_default();
        assert_eq!(s.segment_count(SimDuration::ZERO), 0);
    }
}
