//! The set-top box peer (§IV-B.3, §V-C).
//!
//! Every cable subscriber owns one always-on set-top box. For the
//! cooperative cache an STB contributes:
//!
//! * a fixed slice of its disk (the paper assumes 10 GB of a ~40 GB drive);
//! * at most **two concurrent streams** in either direction — the paper's
//!   model of the two logical coax channels an inexpensive tuner can drive.
//!
//! [`SetTopBox`] tracks both resources. Stream slots are modelled as a small
//! heap of end-times: acquiring a slot at time `t` first releases any stream
//! that has already finished by `t`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::error::HfcError;
use crate::ids::{PeerId, SegmentId};
use crate::units::{DataSize, SimTime};
use std::collections::HashSet;

/// Mutable access to a collection of set-top boxes addressed by [`PeerId`].
///
/// The cooperative cache mutates peer state (storage, stream slots) through
/// this trait rather than through a concrete plant type, so the same index
/// server drives both the serial engine (whole-plant
/// [`Topology`](crate::topology::Topology)) and the sharded parallel engine
/// (one neighborhood's boxes per worker).
pub trait StbStore {
    /// Mutable access to `peer`'s set-top box.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::UnknownPeer`] for peers outside this store.
    fn stb_mut(&mut self, peer: PeerId) -> Result<&mut SetTopBox, HfcError>;
}

/// Default storage contribution per peer (§V-C): 10 GB.
pub const DEFAULT_CONTRIBUTION: DataSize = DataSize::from_gigabytes(10);
/// Typical full disk of a period set-top box (§V-C): about 40 GB.
pub const TYPICAL_DISK: DataSize = DataSize::from_gigabytes(40);
/// Default number of concurrent streams an STB can sustain (§V-C): 2.
pub const DEFAULT_STREAM_SLOTS: u8 = 2;

/// A subscriber's set-top box acting as a cache peer.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::stb::SetTopBox;
/// use cablevod_hfc::ids::{PeerId, ProgramId, SegmentId};
/// use cablevod_hfc::units::{DataSize, SimTime, SimDuration};
///
/// let mut stb = SetTopBox::new(PeerId::new(0), DataSize::from_gigabytes(10), 2);
/// let seg = SegmentId::new(ProgramId::new(1), 0);
/// stb.store(seg, DataSize::from_bytes(302_250_000))?;
/// assert!(stb.holds(seg));
///
/// // Two streams fit; a third is refused until one ends.
/// let t0 = SimTime::EPOCH;
/// let end = t0 + SimDuration::from_minutes(5);
/// assert!(stb.try_start_stream(t0, end));
/// assert!(stb.try_start_stream(t0, end));
/// assert!(!stb.try_start_stream(t0, end));
/// assert!(stb.try_start_stream(end, end + SimDuration::from_minutes(5)));
/// # Ok::<(), cablevod_hfc::error::HfcError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetTopBox {
    id: PeerId,
    capacity: DataSize,
    used: DataSize,
    stored: HashSet<SegmentId>,
    slot_limit: u8,
    /// End times of in-flight streams (min-heap), lazily pruned.
    #[serde(skip)]
    active: BinaryHeap<Reverse<SimTime>>,
    streams_refused: u64,
}

impl SetTopBox {
    /// Creates an STB contributing `capacity` bytes of cache storage and up
    /// to `slot_limit` concurrent streams (0 means the peer can never
    /// serve or receive — useful for modelling opted-out subscribers).
    pub fn new(id: PeerId, capacity: DataSize, slot_limit: u8) -> Self {
        SetTopBox {
            id,
            capacity,
            used: DataSize::ZERO,
            stored: HashSet::new(),
            slot_limit,
            active: BinaryHeap::new(),
            streams_refused: 0,
        }
    }

    /// Creates an STB with the paper's defaults (10 GB, 2 slots).
    pub fn with_paper_defaults(id: PeerId) -> Self {
        SetTopBox::new(id, DEFAULT_CONTRIBUTION, DEFAULT_STREAM_SLOTS)
    }

    /// This peer's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Total contributed storage.
    pub fn capacity(&self) -> DataSize {
        self.capacity
    }

    /// Bytes currently occupied by cached segments.
    pub fn used(&self) -> DataSize {
        self.used
    }

    /// Remaining free cache space.
    pub fn free(&self) -> DataSize {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of cached segments.
    pub fn stored_segment_count(&self) -> usize {
        self.stored.len()
    }

    /// Whether this peer currently stores `segment`.
    pub fn holds(&self, segment: SegmentId) -> bool {
        self.stored.contains(&segment)
    }

    /// Iterates over the segments stored on this peer (arbitrary order).
    pub fn stored_segments(&self) -> impl Iterator<Item = SegmentId> + '_ {
        self.stored.iter().copied()
    }

    /// Stores `segment` occupying `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::StorageFull`] if the segment does not fit and
    /// [`HfcError::DuplicateSegment`] if it is already stored.
    pub fn store(&mut self, segment: SegmentId, size: DataSize) -> Result<(), HfcError> {
        if self.stored.contains(&segment) {
            return Err(HfcError::DuplicateSegment {
                peer: self.id,
                segment,
            });
        }
        if size > self.free() {
            return Err(HfcError::StorageFull {
                peer: self.id,
                requested: size,
                free: self.free(),
            });
        }
        self.used += size;
        self.stored.insert(segment);
        Ok(())
    }

    /// Deletes `segment`, releasing `size` bytes (the caller tracks sizes —
    /// the index server knows every placement it made).
    ///
    /// # Errors
    ///
    /// Returns [`HfcError::SegmentNotStored`] if the peer does not hold the
    /// segment.
    pub fn delete(&mut self, segment: SegmentId, size: DataSize) -> Result<(), HfcError> {
        if !self.stored.remove(&segment) {
            return Err(HfcError::SegmentNotStored {
                peer: self.id,
                segment,
            });
        }
        self.used = self.used.saturating_sub(size);
        Ok(())
    }

    /// Number of streams still active at `now` (prunes finished ones).
    pub fn active_streams(&mut self, now: SimTime) -> usize {
        self.release_finished(now);
        self.active.len()
    }

    /// Attempts to occupy one stream slot from `now` until `end`.
    ///
    /// Returns `false` — and counts a refusal — when all slots are busy;
    /// §V-C: "The cache will trigger a miss if a segment is requested from a
    /// peer that has more than two active streams in either direction."
    pub fn try_start_stream(&mut self, now: SimTime, end: SimTime) -> bool {
        self.release_finished(now);
        if self.active.len() >= usize::from(self.slot_limit) {
            self.streams_refused += 1;
            return false;
        }
        self.active.push(Reverse(end.max(now)));
        true
    }

    /// Unconditionally occupies a slot (used for the viewer's own playback,
    /// which is never blocked — overcommit is surfaced via
    /// [`SetTopBox::is_overcommitted`]).
    pub fn start_stream_unchecked(&mut self, now: SimTime, end: SimTime) {
        self.release_finished(now);
        self.active.push(Reverse(end.max(now)));
    }

    /// Whether the peer currently exceeds its slot limit (possible only via
    /// [`SetTopBox::start_stream_unchecked`]).
    pub fn is_overcommitted(&mut self, now: SimTime) -> bool {
        self.active_streams(now) > usize::from(self.slot_limit)
    }

    /// How many stream requests this peer has refused so far.
    pub fn streams_refused(&self) -> u64 {
        self.streams_refused
    }

    /// Clears cached content and stream state, keeping configuration.
    pub fn reset(&mut self) {
        self.used = DataSize::ZERO;
        self.stored.clear();
        self.active.clear();
        self.streams_refused = 0;
    }

    fn release_finished(&mut self, now: SimTime) {
        while let Some(Reverse(end)) = self.active.peek() {
            if *end <= now {
                self.active.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProgramId;
    use crate::units::SimDuration;

    fn seg(p: u32, i: u16) -> SegmentId {
        SegmentId::new(ProgramId::new(p), i)
    }

    #[test]
    fn storage_accounting_round_trips() {
        let mut stb = SetTopBox::new(PeerId::new(1), DataSize::from_bytes(1000), 2);
        stb.store(seg(0, 0), DataSize::from_bytes(400)).unwrap();
        stb.store(seg(0, 1), DataSize::from_bytes(600)).unwrap();
        assert_eq!(stb.free(), DataSize::ZERO);
        assert_eq!(stb.stored_segment_count(), 2);
        stb.delete(seg(0, 0), DataSize::from_bytes(400)).unwrap();
        assert_eq!(stb.free(), DataSize::from_bytes(400));
        assert!(!stb.holds(seg(0, 0)));
        assert!(stb.holds(seg(0, 1)));
    }

    #[test]
    fn store_rejects_overflow_and_duplicates() {
        let mut stb = SetTopBox::new(PeerId::new(1), DataSize::from_bytes(100), 2);
        stb.store(seg(0, 0), DataSize::from_bytes(60)).unwrap();
        let err = stb.store(seg(0, 1), DataSize::from_bytes(60)).unwrap_err();
        assert!(matches!(err, HfcError::StorageFull { .. }));
        let err = stb.store(seg(0, 0), DataSize::from_bytes(10)).unwrap_err();
        assert!(matches!(err, HfcError::DuplicateSegment { .. }));
    }

    #[test]
    fn delete_of_missing_segment_errors() {
        let mut stb = SetTopBox::new(PeerId::new(1), DataSize::from_bytes(100), 2);
        let err = stb.delete(seg(9, 9), DataSize::from_bytes(1)).unwrap_err();
        assert!(matches!(err, HfcError::SegmentNotStored { .. }));
    }

    #[test]
    fn slots_enforce_paper_limit_of_two() {
        let mut stb = SetTopBox::with_paper_defaults(PeerId::new(0));
        let t = SimTime::from_secs(0);
        let end = t + SimDuration::from_minutes(5);
        assert!(stb.try_start_stream(t, end));
        assert!(stb.try_start_stream(t, end));
        assert!(
            !stb.try_start_stream(t, end),
            "third concurrent stream refused"
        );
        assert_eq!(stb.streams_refused(), 1);
        // After both streams end the slots free up.
        let later = end + SimDuration::from_secs(1);
        assert_eq!(stb.active_streams(later), 0);
        assert!(stb.try_start_stream(later, later + SimDuration::from_minutes(5)));
    }

    #[test]
    fn slot_release_is_exact_at_end_time() {
        let mut stb = SetTopBox::new(PeerId::new(0), DataSize::ZERO, 1);
        let t = SimTime::from_secs(100);
        let end = SimTime::from_secs(400);
        assert!(stb.try_start_stream(t, end));
        assert!(!stb.try_start_stream(SimTime::from_secs(399), end));
        assert!(stb.try_start_stream(SimTime::from_secs(400), SimTime::from_secs(700)));
    }

    #[test]
    fn unchecked_streams_report_overcommit() {
        let mut stb = SetTopBox::with_paper_defaults(PeerId::new(0));
        let t = SimTime::EPOCH;
        let end = t + SimDuration::from_minutes(5);
        for _ in 0..3 {
            stb.start_stream_unchecked(t, end);
        }
        assert!(stb.is_overcommitted(t));
        assert!(!stb.is_overcommitted(end));
    }

    #[test]
    fn zero_slot_peer_never_serves() {
        let mut stb = SetTopBox::new(PeerId::new(0), DataSize::from_gigabytes(1), 0);
        assert!(!stb.try_start_stream(SimTime::EPOCH, SimTime::from_secs(10)));
    }

    #[test]
    fn reset_clears_state_keeps_config() {
        let mut stb = SetTopBox::new(PeerId::new(7), DataSize::from_bytes(100), 2);
        stb.store(seg(1, 1), DataSize::from_bytes(50)).unwrap();
        stb.start_stream_unchecked(SimTime::EPOCH, SimTime::from_secs(10));
        stb.reset();
        assert_eq!(stb.used(), DataSize::ZERO);
        assert_eq!(stb.stored_segment_count(), 0);
        assert_eq!(stb.active_streams(SimTime::EPOCH), 0);
        assert_eq!(stb.capacity(), DataSize::from_bytes(100));
    }
}
