//! The coaxial neighborhood network (§II).
//!
//! Two properties matter for the system design and are modelled here:
//!
//! 1. **Broadcast** — anything sent by the headend *or by any subscriber* is
//!    seen by every subscriber in the neighborhood (given the bidirectional
//!    amplifiers the paper requires in §IV-B.4). Consequently a segment
//!    consumes the same coax bandwidth whether a peer or the headend sends
//!    it, which is why Fig 14 reports one number per neighborhood.
//! 2. **Rate limits** — downstream 4.9–6.6 Gb/s (3.3 Gb/s of which carries
//!    broadcast TV), upstream ≈ 215 Mb/s.

use serde::{Deserialize, Serialize};

use crate::meter::{RateMeter, RateStats};
use crate::units::{BitRate, DataSize, SimTime};

/// Capacity envelope of a coaxial segment.
///
/// # Examples
///
/// ```
/// use cablevod_hfc::coax::CoaxSpec;
/// let spec = CoaxSpec::paper_default();
/// assert!(spec.vod_headroom().as_gbps() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoaxSpec {
    /// Total downstream capacity.
    pub downstream: BitRate,
    /// Portion of downstream reserved for broadcast cable television.
    pub tv_allocation: BitRate,
    /// Upstream capacity (cable modem, set-top control, VoIP).
    pub upstream: BitRate,
}

impl CoaxSpec {
    /// The paper's conservative configuration: 4.9 Gb/s downstream with
    /// 3.3 Gb/s reserved for TV, and the standardized 215 Mb/s upstream.
    pub fn paper_default() -> Self {
        CoaxSpec {
            downstream: BitRate::COAX_DOWNSTREAM_LOW,
            tv_allocation: BitRate::COAX_TV_ALLOCATION,
            upstream: BitRate::COAX_UPSTREAM,
        }
    }

    /// The high-capacity variant (6.6 Gb/s plant).
    pub fn high_capacity() -> Self {
        CoaxSpec {
            downstream: BitRate::COAX_DOWNSTREAM_HIGH,
            ..CoaxSpec::paper_default()
        }
    }

    /// Downstream capacity left for VoD after the TV allocation.
    pub fn vod_headroom(&self) -> BitRate {
        self.downstream.saturating_sub(self.tv_allocation)
    }
}

impl Default for CoaxSpec {
    fn default() -> Self {
        CoaxSpec::paper_default()
    }
}

/// Bandwidth state of one neighborhood's coaxial network.
///
/// Every VoD segment transmission in the neighborhood — whether served by a
/// peer (cache hit) or rebroadcast by the headend (cache miss) — is recorded
/// here, because the broadcast medium carries it either way.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoaxNetwork {
    spec: CoaxSpec,
    meter: RateMeter,
    broadcasts: u64,
}

impl CoaxNetwork {
    /// Creates a coax network with the given capacity envelope.
    pub fn new(spec: CoaxSpec) -> Self {
        CoaxNetwork {
            spec,
            meter: RateMeter::hourly(),
            broadcasts: 0,
        }
    }

    /// The capacity envelope.
    pub fn spec(&self) -> &CoaxSpec {
        &self.spec
    }

    /// Records one segment broadcast over `[start, end)` of `size` bytes.
    pub fn record_broadcast(&mut self, start: SimTime, end: SimTime, size: DataSize) {
        self.broadcasts += 1;
        self.meter.record(start, end, size);
    }

    /// Number of segment broadcasts seen.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Total data carried.
    pub fn total(&self) -> DataSize {
        self.meter.total()
    }

    /// The underlying hour-bucketed meter.
    pub fn meter(&self) -> &RateMeter {
        &self.meter
    }

    /// Peak-window (7–11 PM) statistics over the given day range.
    pub fn peak_stats(&self, first_day: u64, last_day: u64) -> RateStats {
        self.meter.peak_stats(first_day, last_day)
    }

    /// Fraction of the VoD headroom used by the mean peak rate; the paper
    /// reports "less than 17 % of the capacity of the coaxial line in
    /// extreme cases" (§VI-B).
    pub fn peak_utilization(&self, first_day: u64, last_day: u64) -> f64 {
        self.peak_stats(first_day, last_day)
            .mean
            .utilization_of(self.spec.vod_headroom())
    }
}

impl Default for CoaxNetwork {
    fn default() -> Self {
        CoaxNetwork::new(CoaxSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::SimDuration;

    #[test]
    fn headroom_subtracts_tv() {
        let spec = CoaxSpec::paper_default();
        assert_eq!(spec.vod_headroom(), BitRate::from_mbps(1600));
        assert_eq!(
            CoaxSpec::high_capacity().vod_headroom(),
            BitRate::from_mbps(3300)
        );
    }

    #[test]
    fn broadcasts_accumulate_on_meter() {
        let mut coax = CoaxNetwork::default();
        let t = SimTime::from_days_hours(0, 20);
        let seg = BitRate::STREAM_MPEG2_SD * SimDuration::from_minutes(5);
        coax.record_broadcast(t, t + SimDuration::from_minutes(5), seg);
        coax.record_broadcast(t, t + SimDuration::from_minutes(5), seg);
        assert_eq!(coax.broadcasts(), 2);
        assert_eq!(coax.total(), seg * 2);
    }

    #[test]
    fn peak_utilization_is_fractional() {
        let mut coax = CoaxNetwork::default();
        // Saturate hour 20 of day 0 at 450 Mb/s.
        let t = SimTime::from_days_hours(0, 20);
        let size = BitRate::from_mbps(450) * SimDuration::from_hours(1);
        coax.record_broadcast(t, t + SimDuration::from_hours(1), size);
        let util = coax.peak_utilization(0, 1);
        // 450 Mb/s over 4 peak hours -> mean 112.5 Mb/s of 1600 Mb/s headroom.
        assert!((util - 112.5 / 1600.0).abs() < 1e-6, "got {util}");
    }
}
