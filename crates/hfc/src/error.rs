//! Error types for the cable-plant substrate.

use std::error::Error;
use std::fmt;

use crate::ids::{NeighborhoodId, PeerId, SegmentId, UserId};
use crate::units::DataSize;

/// Errors raised by cable-plant operations.
///
/// All variants carry enough context to identify the entity involved, so a
/// failed placement or delete can be traced back to a specific peer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HfcError {
    /// A segment did not fit in a peer's remaining contribution.
    StorageFull {
        /// The peer that refused the store.
        peer: PeerId,
        /// Size of the segment that was being stored.
        requested: DataSize,
        /// Free space remaining on the peer.
        free: DataSize,
    },
    /// A segment was stored twice on the same peer.
    DuplicateSegment {
        /// The peer involved.
        peer: PeerId,
        /// The duplicate segment.
        segment: SegmentId,
    },
    /// A delete named a segment the peer does not hold.
    SegmentNotStored {
        /// The peer involved.
        peer: PeerId,
        /// The missing segment.
        segment: SegmentId,
    },
    /// A lookup used an unknown user id.
    UnknownUser {
        /// The offending id.
        user: UserId,
    },
    /// A lookup used an unknown peer id.
    UnknownPeer {
        /// The offending id.
        peer: PeerId,
    },
    /// A lookup used an unknown neighborhood id.
    UnknownNeighborhood {
        /// The offending id.
        neighborhood: NeighborhoodId,
    },
    /// A topology was configured with zero subscribers or zero-sized
    /// neighborhoods.
    InvalidTopology {
        /// Human-readable reason.
        reason: String,
    },
    /// A fault plan contained an empty/inverted window or an
    /// out-of-range derate.
    InvalidFaultPlan {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for HfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HfcError::StorageFull {
                peer,
                requested,
                free,
            } => {
                write!(
                    f,
                    "storage full on {peer}: requested {requested}, free {free}"
                )
            }
            HfcError::DuplicateSegment { peer, segment } => {
                write!(f, "segment {segment} already stored on {peer}")
            }
            HfcError::SegmentNotStored { peer, segment } => {
                write!(f, "segment {segment} not stored on {peer}")
            }
            HfcError::UnknownUser { user } => write!(f, "unknown user id {user}"),
            HfcError::UnknownPeer { peer } => write!(f, "unknown peer id {peer}"),
            HfcError::UnknownNeighborhood { neighborhood } => {
                write!(f, "unknown neighborhood id {neighborhood}")
            }
            HfcError::InvalidTopology { reason } => write!(f, "invalid topology: {reason}"),
            HfcError::InvalidFaultPlan { reason } => write!(f, "invalid fault plan: {reason}"),
        }
    }
}

impl Error for HfcError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProgramId;

    #[test]
    fn messages_are_lowercase_and_contextual() {
        let err = HfcError::StorageFull {
            peer: PeerId::new(3),
            requested: DataSize::from_bytes(100),
            free: DataSize::from_bytes(10),
        };
        let msg = err.to_string();
        assert!(msg.starts_with("storage full on peer3"));

        let err = HfcError::SegmentNotStored {
            peer: PeerId::new(1),
            segment: SegmentId::new(ProgramId::new(2), 4),
        };
        assert_eq!(err.to_string(), "segment prog2[4] not stored on peer1");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HfcError>();
    }
}
