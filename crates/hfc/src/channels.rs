//! Logical channel planning on the coaxial downstream (§II, §V-C).
//!
//! A cable plant divides its RF spectrum into 6 MHz channels; with QAM-256
//! modulation each carries ≈ 38.8 Mb/s. The paper's capacity figures
//! (4.9–6.6 Gb/s downstream, 3.3 Gb/s of TV) correspond to ~126–170
//! channels with ~85 reserved for broadcast television, and its two-stream
//! STB limit comes from "typical set top boxes cannot receive data on more
//! than two logical channels of the coaxial line".
//!
//! [`ChannelPlan`] converts between data rates and channel counts, so
//! feasibility statements like Fig 14's "450 Mb/s of VoD traffic" can be
//! expressed in the operator's own unit: *how many QAM channels does the
//! VoD service occupy?*

use serde::{Deserialize, Serialize};

use crate::coax::CoaxSpec;
use crate::units::BitRate;

/// Payload rate of one 6 MHz QAM-256 channel (ITU-T J.83 Annex B).
pub const QAM256_CHANNEL_RATE: BitRate = BitRate::from_bps(38_800_000);

/// A channel plan for one coax segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelPlan {
    channel_rate: BitRate,
    total_channels: u32,
    tv_channels: u32,
}

impl ChannelPlan {
    /// Derives a plan from a capacity envelope: the spec's rates are
    /// quantized into whole channels (TV rounded up — broadcast always
    /// claims whole channels).
    pub fn from_spec(spec: &CoaxSpec) -> Self {
        let rate = QAM256_CHANNEL_RATE.as_bps();
        ChannelPlan {
            channel_rate: QAM256_CHANNEL_RATE,
            total_channels: (spec.downstream.as_bps() / rate) as u32,
            tv_channels: spec.tv_allocation.as_bps().div_ceil(rate) as u32,
        }
    }

    /// The paper's conservative plant (4.9 Gb/s ≈ 126 channels, 3.3 Gb/s
    /// of TV ≈ 86 channels).
    pub fn paper_default() -> Self {
        ChannelPlan::from_spec(&CoaxSpec::paper_default())
    }

    /// Payload rate per channel.
    pub fn channel_rate(&self) -> BitRate {
        self.channel_rate
    }

    /// Total downstream channels.
    pub fn total_channels(&self) -> u32 {
        self.total_channels
    }

    /// Channels reserved for broadcast TV.
    pub fn tv_channels(&self) -> u32 {
        self.tv_channels
    }

    /// Channels available to VoD and other services.
    pub fn free_channels(&self) -> u32 {
        self.total_channels.saturating_sub(self.tv_channels)
    }

    /// VoD streams of `stream_rate` that fit in one channel (streams do
    /// not straddle channel boundaries).
    ///
    /// # Panics
    ///
    /// Panics if `stream_rate` is zero.
    pub fn streams_per_channel(&self, stream_rate: BitRate) -> u32 {
        assert!(stream_rate.as_bps() > 0, "stream rate must be positive");
        (self.channel_rate.as_bps() / stream_rate.as_bps()) as u32
    }

    /// Channels needed to carry `concurrent` streams of `stream_rate`.
    pub fn channels_for_streams(&self, concurrent: u64, stream_rate: BitRate) -> u32 {
        let per = u64::from(self.streams_per_channel(stream_rate).max(1));
        concurrent.div_ceil(per) as u32
    }

    /// Channels needed to carry an aggregate `rate` of stream traffic
    /// (conservative: quantized via whole streams per channel).
    pub fn channels_for_rate(&self, rate: BitRate, stream_rate: BitRate) -> u32 {
        let concurrent = rate.as_bps().div_ceil(stream_rate.as_bps().max(1));
        self.channels_for_streams(concurrent, stream_rate)
    }

    /// Whether `rate` of VoD traffic fits in the non-TV spectrum.
    pub fn fits(&self, rate: BitRate, stream_rate: BitRate) -> bool {
        self.channels_for_rate(rate, stream_rate) <= self.free_channels()
    }
}

impl Default for ChannelPlan {
    fn default() -> Self {
        ChannelPlan::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_plant_has_about_126_channels() {
        let plan = ChannelPlan::paper_default();
        assert_eq!(plan.total_channels(), 126);
        assert_eq!(plan.tv_channels(), 86);
        assert_eq!(plan.free_channels(), 40);
    }

    #[test]
    fn four_sd_streams_share_a_channel() {
        let plan = ChannelPlan::paper_default();
        assert_eq!(plan.streams_per_channel(BitRate::STREAM_MPEG2_SD), 4);
    }

    #[test]
    fn fig14_load_fits_comfortably() {
        // 450 Mb/s mean / 650 Mb/s poor-case VoD traffic at 1,000 peers.
        let plan = ChannelPlan::paper_default();
        let mean = plan.channels_for_rate(BitRate::from_mbps(450), BitRate::STREAM_MPEG2_SD);
        let poor = plan.channels_for_rate(BitRate::from_mbps(650), BitRate::STREAM_MPEG2_SD);
        assert_eq!(mean, 14);
        assert_eq!(poor, 21);
        assert!(plan.fits(BitRate::from_mbps(650), BitRate::STREAM_MPEG2_SD));
    }

    #[test]
    fn saturating_the_free_spectrum_is_detected() {
        let plan = ChannelPlan::paper_default();
        // 40 free channels x 4 streams x 8.06 Mb/s ≈ 1.29 Gb/s of streams.
        assert!(plan.fits(BitRate::from_mbps(1_280), BitRate::STREAM_MPEG2_SD));
        assert!(!plan.fits(BitRate::from_mbps(1_300), BitRate::STREAM_MPEG2_SD));
    }

    #[test]
    fn high_capacity_plant_has_more_headroom() {
        let high = ChannelPlan::from_spec(&CoaxSpec::high_capacity());
        assert!(high.free_channels() > ChannelPlan::paper_default().free_channels());
    }

    #[test]
    fn channel_counts_round_sensibly() {
        let plan = ChannelPlan::paper_default();
        assert_eq!(plan.channels_for_streams(0, BitRate::STREAM_MPEG2_SD), 0);
        assert_eq!(plan.channels_for_streams(1, BitRate::STREAM_MPEG2_SD), 1);
        assert_eq!(plan.channels_for_streams(5, BitRate::STREAM_MPEG2_SD), 2);
    }
}
