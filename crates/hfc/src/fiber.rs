//! The fiber-optic distribution side of the HFC plant (§II).
//!
//! The cable operator's central media servers feed headends over a switched
//! fiber network. The evaluation's primary metric — "the amount of VoD video
//! data that must be served by centralized media servers" (§V) — is the
//! aggregate rate recorded by [`CentralServer`]; per-headend fiber links are
//! also metered so feasibility of the fiber tier can be checked.

use serde::{Deserialize, Serialize};

use crate::ids::NeighborhoodId;
use crate::meter::{RateMeter, RateStats};
use crate::units::{DataSize, SimTime};

/// The cable operator's central media server farm.
///
/// While separate services may be served from different geographic areas,
/// the paper represents the operator as a single source; so do we.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CentralServer {
    meter: RateMeter,
    requests: u64,
}

impl CentralServer {
    /// Creates a server with an hourly meter.
    pub fn new() -> Self {
        CentralServer {
            meter: RateMeter::hourly(),
            requests: 0,
        }
    }

    /// Records the server streaming `size` bytes over `[start, end)` to
    /// satisfy one cache miss.
    pub fn record_service(&mut self, start: SimTime, end: SimTime, size: DataSize) {
        self.requests += 1;
        self.meter.record(start, end, size);
    }

    /// Number of segment requests served (cache misses system-wide).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total data served.
    pub fn total(&self) -> DataSize {
        self.meter.total()
    }

    /// The underlying hour-bucketed meter.
    pub fn meter(&self) -> &RateMeter {
        &self.meter
    }

    /// Peak-window (7–11 PM) statistics — the paper's headline number.
    pub fn peak_stats(&self, first_day: u64, last_day: u64) -> RateStats {
        self.meter.peak_stats(first_day, last_day)
    }
}

impl Default for CentralServer {
    fn default() -> Self {
        CentralServer::new()
    }
}

/// The fiber link from the operator to one headend.
///
/// Carries exactly the traffic the central server sends into that headend's
/// neighborhood (misses), never peer-served traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FiberLink {
    neighborhood: NeighborhoodId,
    meter: RateMeter,
}

impl FiberLink {
    /// Creates the link feeding `neighborhood`.
    pub fn new(neighborhood: NeighborhoodId) -> Self {
        FiberLink {
            neighborhood,
            meter: RateMeter::hourly(),
        }
    }

    /// The neighborhood this link feeds.
    pub fn neighborhood(&self) -> NeighborhoodId {
        self.neighborhood
    }

    /// Records `size` bytes carried over `[start, end)`.
    pub fn record(&mut self, start: SimTime, end: SimTime, size: DataSize) {
        self.meter.record(start, end, size);
    }

    /// Total data carried.
    pub fn total(&self) -> DataSize {
        self.meter.total()
    }

    /// The underlying meter.
    pub fn meter(&self) -> &RateMeter {
        &self.meter
    }

    /// Peak-window statistics for this link.
    pub fn peak_stats(&self, first_day: u64, last_day: u64) -> RateStats {
        self.meter.peak_stats(first_day, last_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{BitRate, SimDuration};

    #[test]
    fn server_counts_requests_and_bytes() {
        let mut server = CentralServer::new();
        let t = SimTime::from_days_hours(0, 19);
        let seg = BitRate::STREAM_MPEG2_SD * SimDuration::from_minutes(5);
        server.record_service(t, t + SimDuration::from_minutes(5), seg);
        assert_eq!(server.requests(), 1);
        assert_eq!(server.total(), seg);
        assert!(server.peak_stats(0, 1).mean.as_bps() > 0);
    }

    #[test]
    fn fiber_link_is_tied_to_neighborhood() {
        let mut link = FiberLink::new(NeighborhoodId::new(4));
        assert_eq!(link.neighborhood(), NeighborhoodId::new(4));
        let t = SimTime::EPOCH;
        link.record(
            t,
            t + SimDuration::from_minutes(5),
            DataSize::from_bytes(100),
        );
        assert_eq!(link.total(), DataSize::from_bytes(100));
    }
}
