//! Error type for simulation runs.

use std::error::Error;
use std::fmt;

use cablevod_cache::CacheError;
use cablevod_hfc::HfcError;
use cablevod_trace::TraceError;

/// Errors raised while configuring or running a simulation.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration field was out of range.
    Config {
        /// What was wrong.
        reason: String,
    },
    /// A cache-layer invariant broke mid-run.
    Cache(CacheError),
    /// A cable-plant invariant broke mid-run.
    Hfc(HfcError),
    /// The trace source failed while streaming records (I/O, corruption).
    Trace(TraceError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config { reason } => write!(f, "invalid simulation config: {reason}"),
            SimError::Cache(e) => write!(f, "cache failure: {e}"),
            SimError::Hfc(e) => write!(f, "cable plant failure: {e}"),
            SimError::Trace(e) => write!(f, "trace source failure: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Cache(e) => Some(e),
            SimError::Hfc(e) => Some(e),
            SimError::Trace(e) => Some(e),
            SimError::Config { .. } => None,
        }
    }
}

impl From<CacheError> for SimError {
    fn from(e: CacheError) -> Self {
        SimError::Cache(e)
    }
}

impl From<HfcError> for SimError {
    fn from(e: HfcError) -> Self {
        SimError::Hfc(e)
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_chains() {
        let err = SimError::Config {
            reason: "zero days".into(),
        };
        assert_eq!(err.to_string(), "invalid simulation config: zero days");
        let err = SimError::from(CacheError::MissingSchedule);
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
