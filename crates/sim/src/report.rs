//! Simulation results.

use serde::{Deserialize, Serialize};

use cablevod_cache::IndexStats;
use cablevod_hfc::meter::RateStats;
use cablevod_hfc::units::{BitRate, DataSize};

/// Everything a simulation run measured.
///
/// The headline number is [`SimReport::server_peak`] — "the average server
/// rate during peak hours" that every evaluation figure reports — with
/// 5 %/95 % quantiles over peak-hour samples as error bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Central-server rate statistics over the peak window (7–11 PM),
    /// measured days only.
    pub server_peak: RateStats,
    /// Total bytes served by the central server over the whole run
    /// (including warm-up).
    pub server_total: DataSize,
    /// Mean server rate per hour of the day, whole run (Fig 7 shape).
    pub server_hourly: [BitRate; 24],
    /// Peak-window coax statistics pooled over all neighborhoods — the
    /// Fig 14 metric (mean = "average traffic rate", q95 = "poor cases").
    pub coax_peak: RateStats,
    /// Per-neighborhood mean peak coax rate.
    pub coax_per_neighborhood: Vec<BitRate>,
    /// Aggregated index-server counters.
    pub cache: IndexStats,
    /// Sessions simulated.
    pub sessions: u64,
    /// Segment requests resolved.
    pub segment_requests: u64,
    /// Session starts that pushed the viewer's own STB beyond its slot
    /// limit (counted, not blocked — see DESIGN.md §5).
    pub viewer_overcommits: u64,
    /// First measured day (after warm-up).
    pub measured_from_day: u64,
    /// One past the last measured day.
    pub measured_to_day: u64,
}

impl SimReport {
    /// Fraction of central-server peak load saved relative to `baseline`
    /// (e.g. the 17 Gb/s no-cache load). Zero for a zero baseline.
    pub fn savings_vs(&self, baseline: BitRate) -> f64 {
        if baseline.as_bps() == 0 {
            return 0.0;
        }
        1.0 - self.server_peak.mean.as_bps() as f64 / baseline.as_bps() as f64
    }

    /// Segment-level cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Mean peak coax rate across neighborhoods.
    pub fn coax_mean(&self) -> BitRate {
        if self.coax_per_neighborhood.is_empty() {
            return BitRate::ZERO;
        }
        let sum: u64 = self.coax_per_neighborhood.iter().map(|r| r.as_bps()).sum();
        BitRate::from_bps(sum / self.coax_per_neighborhood.len() as u64)
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "server peak: {}", self.server_peak)?;
        writeln!(
            f,
            "cache: {:.1}% hits ({} hits, {} uncached, {} cold, {} busy)",
            self.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.miss_uncached,
            self.cache.miss_not_materialized,
            self.cache.miss_peer_busy
        )?;
        write!(
            f,
            "coax peak: {} (95%: {}), {} sessions, days {}..{}",
            self.coax_peak.mean,
            self.coax_peak.q95,
            self.sessions,
            self.measured_from_day,
            self.measured_to_day
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            server_peak: RateStats::from_samples(&[BitRate::from_gbps(2.0)]),
            server_total: DataSize::from_terabytes(1),
            server_hourly: [BitRate::ZERO; 24],
            coax_peak: RateStats::from_samples(&[BitRate::from_mbps(400)]),
            coax_per_neighborhood: vec![BitRate::from_mbps(350), BitRate::from_mbps(450)],
            cache: IndexStats {
                hits: 80,
                miss_uncached: 20,
                ..IndexStats::default()
            },
            sessions: 100,
            segment_requests: 100,
            viewer_overcommits: 0,
            measured_from_day: 14,
            measured_to_day: 28,
        }
    }

    #[test]
    fn savings_relative_to_baseline() {
        let r = report();
        let savings = r.savings_vs(BitRate::from_gbps(17.0));
        assert!((savings - (1.0 - 2.0 / 17.0)).abs() < 1e-9);
        assert_eq!(r.savings_vs(BitRate::ZERO), 0.0);
    }

    #[test]
    fn coax_mean_averages_neighborhoods() {
        assert_eq!(report().coax_mean(), BitRate::from_mbps(400));
    }

    #[test]
    fn display_is_informative() {
        let text = report().to_string();
        assert!(text.contains("server peak"));
        assert!(text.contains("80.0% hits"));
    }
}
