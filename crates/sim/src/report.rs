//! Simulation results.

use serde::{Deserialize, Serialize};

use cablevod_cache::IndexStats;
use cablevod_hfc::meter::RateStats;
use cablevod_hfc::units::{BitRate, DataSize};

/// Everything a simulation run measured.
///
/// The headline number is [`SimReport::server_peak`] — "the average server
/// rate during peak hours" that every evaluation figure reports — with
/// 5 %/95 % quantiles over peak-hour samples as error bars.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Central-server rate statistics over the peak window (7–11 PM),
    /// measured days only.
    pub server_peak: RateStats,
    /// Total bytes served by the central server over the whole run
    /// (including warm-up).
    pub server_total: DataSize,
    /// Mean server rate per hour of the day, whole run (Fig 7 shape).
    pub server_hourly: [BitRate; 24],
    /// Peak-window coax statistics pooled over all neighborhoods — the
    /// Fig 14 metric (mean = "average traffic rate", q95 = "poor cases").
    pub coax_peak: RateStats,
    /// Per-neighborhood mean peak coax rate.
    pub coax_per_neighborhood: Vec<BitRate>,
    /// Aggregated index-server counters.
    pub cache: IndexStats,
    /// Sessions simulated (including, under enforcing admission, the
    /// blocked and interrupted ones — every trace record is a session).
    pub sessions: u64,
    /// Segment requests resolved.
    pub segment_requests: u64,
    /// Session starts that pushed the viewer's own STB beyond its slot
    /// limit. Admission has two modes (see
    /// [`AdmissionMode`](crate::config::AdmissionMode)): under the
    /// default **counting** mode, over-limit starts — this counter, and
    /// likewise coax traffic beyond the channel budget — are counted,
    /// never blocked (DESIGN.md §5), which preserves the paper's
    /// perfect-plant figures bit for bit. Under **enforcing** mode,
    /// plant-level admission (outages, channel budget) blocks or
    /// interrupts sessions instead, and the consequences land in
    /// [`SimReport::degradation`].
    pub viewer_overcommits: u64,
    /// Degraded-plant measurements. `None` exactly when the run used the
    /// default counting admission mode over a healthy (empty) fault
    /// plan, so pre-fault reports are untouched; `Some` whenever a fault
    /// plan or enforcing admission was configured.
    pub degradation: Option<DegradationReport>,
    /// First measured day (after warm-up).
    pub measured_from_day: u64,
    /// One past the last measured day.
    pub measured_to_day: u64,
}

/// One neighborhood's degradation measurements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborhoodDegradation {
    /// Sessions refused for good (enforcing) or refusal-worthy starts
    /// (counting — the trajectory is unchanged).
    pub blocked_sessions: u64,
    /// In-flight sessions dropped by an outage (enforcing) or
    /// interruption-worthy sessions (counting).
    pub interrupted_sessions: u64,
    /// Retry attempts scheduled (always zero in counting mode).
    pub retries: u64,
    /// Seconds this neighborhood spent in outage (merged intervals).
    pub outage_secs: u64,
    /// Outage recoveries whose time-to-recover was measured (an
    /// admission happened at or after the recovery instant).
    pub recoveries_measured: u64,
    /// Summed lag from outage recovery to the first admitted session.
    pub recovery_lag_total_secs: u64,
    /// Worst single recovery lag.
    pub recovery_lag_max_secs: u64,
}

/// The degradation section of a [`SimReport`]: what the fault plan and
/// the admission mode did to sessions. Merged across shards in
/// neighborhood order, bit-identically to every other metric.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Total sessions blocked (see [`NeighborhoodDegradation::blocked_sessions`]).
    pub blocked_sessions: u64,
    /// Total sessions interrupted mid-stream.
    pub interrupted_sessions: u64,
    /// Total retry attempts scheduled.
    pub retries: u64,
    /// `retry_histogram[k]` — sessions admitted after exactly `k`
    /// retries (`k = 0` is first-try admissions; blocked sessions are
    /// not in the histogram).
    pub retry_histogram: Vec<u64>,
    /// Per-neighborhood breakdown, in neighborhood order.
    pub per_neighborhood: Vec<NeighborhoodDegradation>,
}

impl DegradationReport {
    /// Assembles the section from per-neighborhood parts, computing the
    /// totals.
    pub fn from_parts(
        per_neighborhood: Vec<NeighborhoodDegradation>,
        retry_histogram: Vec<u64>,
    ) -> Self {
        let mut report = DegradationReport {
            blocked_sessions: 0,
            interrupted_sessions: 0,
            retries: 0,
            retry_histogram,
            per_neighborhood,
        };
        for nbhd in &report.per_neighborhood {
            report.blocked_sessions += nbhd.blocked_sessions;
            report.interrupted_sessions += nbhd.interrupted_sessions;
            report.retries += nbhd.retries;
        }
        report
    }

    /// Fraction of `sessions` that were blocked.
    pub fn blocked_rate(&self, sessions: u64) -> f64 {
        if sessions == 0 {
            return 0.0;
        }
        self.blocked_sessions as f64 / sessions as f64
    }

    /// Mean time-to-recover over the measured recoveries, in seconds.
    pub fn mean_recovery_lag_secs(&self) -> f64 {
        let measured: u64 = self
            .per_neighborhood
            .iter()
            .map(|n| n.recoveries_measured)
            .sum();
        if measured == 0 {
            return 0.0;
        }
        let total: u64 = self
            .per_neighborhood
            .iter()
            .map(|n| n.recovery_lag_total_secs)
            .sum();
        total as f64 / measured as f64
    }
}

impl SimReport {
    /// Fraction of central-server peak load saved relative to `baseline`
    /// (e.g. the 17 Gb/s no-cache load). Zero for a zero baseline.
    pub fn savings_vs(&self, baseline: BitRate) -> f64 {
        if baseline.as_bps() == 0 {
            return 0.0;
        }
        1.0 - self.server_peak.mean.as_bps() as f64 / baseline.as_bps() as f64
    }

    /// Segment-level cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Mean peak coax rate across neighborhoods.
    pub fn coax_mean(&self) -> BitRate {
        if self.coax_per_neighborhood.is_empty() {
            return BitRate::ZERO;
        }
        let sum: u64 = self.coax_per_neighborhood.iter().map(|r| r.as_bps()).sum();
        BitRate::from_bps(sum / self.coax_per_neighborhood.len() as u64)
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "server peak: {}", self.server_peak)?;
        writeln!(
            f,
            "cache: {:.1}% hits ({} hits, {} uncached, {} cold, {} busy)",
            self.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.miss_uncached,
            self.cache.miss_not_materialized,
            self.cache.miss_peer_busy
        )?;
        write!(
            f,
            "coax peak: {} (95%: {}), {} sessions, days {}..{}",
            self.coax_peak.mean,
            self.coax_peak.q95,
            self.sessions,
            self.measured_from_day,
            self.measured_to_day
        )?;
        if let Some(deg) = &self.degradation {
            write!(
                f,
                "\ndegradation: {} blocked ({:.2}%), {} interrupted, {} retries, \
                 mean recovery {:.0}s",
                deg.blocked_sessions,
                deg.blocked_rate(self.sessions) * 100.0,
                deg.interrupted_sessions,
                deg.retries,
                deg.mean_recovery_lag_secs()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            server_peak: RateStats::from_samples(&[BitRate::from_gbps(2.0)]),
            server_total: DataSize::from_terabytes(1),
            server_hourly: [BitRate::ZERO; 24],
            coax_peak: RateStats::from_samples(&[BitRate::from_mbps(400)]),
            coax_per_neighborhood: vec![BitRate::from_mbps(350), BitRate::from_mbps(450)],
            cache: IndexStats {
                hits: 80,
                miss_uncached: 20,
                ..IndexStats::default()
            },
            sessions: 100,
            segment_requests: 100,
            viewer_overcommits: 0,
            degradation: None,
            measured_from_day: 14,
            measured_to_day: 28,
        }
    }

    #[test]
    fn savings_relative_to_baseline() {
        let r = report();
        let savings = r.savings_vs(BitRate::from_gbps(17.0));
        assert!((savings - (1.0 - 2.0 / 17.0)).abs() < 1e-9);
        assert_eq!(r.savings_vs(BitRate::ZERO), 0.0);
    }

    #[test]
    fn coax_mean_averages_neighborhoods() {
        assert_eq!(report().coax_mean(), BitRate::from_mbps(400));
    }

    #[test]
    fn display_is_informative() {
        let text = report().to_string();
        assert!(text.contains("server peak"));
        assert!(text.contains("80.0% hits"));
    }
}
