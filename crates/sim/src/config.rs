//! Simulation configuration (§V-B, §V-C).

use serde::{Deserialize, Serialize};

use cablevod_cache::{FillPolicy, PlacementPolicy, StrategySpec};
use cablevod_hfc::coax::CoaxSpec;
use cablevod_hfc::fault::FaultPlan;
use cablevod_hfc::stb::{DEFAULT_CONTRIBUTION, DEFAULT_STREAM_SLOTS};
use cablevod_hfc::units::{BitRate, DataSize, SimDuration};

use crate::error::SimError;

/// What the engine does when a session arrives while its neighborhood's
/// plant is down or its channel budget is exhausted.
///
/// The paper's figures model a perfect broadcast plant, so the default
/// keeps their semantics: over-limit traffic is **counted**, never
/// blocked, and reports stay bit-identical to earlier versions.
/// [`Enforcing`](AdmissionMode::Enforcing) turns the same checks into
/// real admission control for degraded-plant studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AdmissionMode {
    /// Measure violations (blocked-worthy starts, interruption-worthy
    /// continuations) without altering any session's trajectory. The
    /// default; with an empty [`FaultPlan`] this is byte-identical to
    /// the pre-fault engine.
    #[default]
    Counting,
    /// Enforce the plant: sessions arriving during an outage or against
    /// an exhausted channel budget retry with bounded exponential
    /// backoff and are blocked when retries run out; in-flight sessions
    /// hit by an outage are interrupted.
    Enforcing,
}

/// Bounded exponential backoff for set-top boxes whose session was
/// refused admission: retry `k` waits `base_backoff * 2^k`, and after
/// `max_retries` refusals the session is blocked for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    max_retries: u8,
    base_backoff: SimDuration,
}

impl RetryPolicy {
    /// The default STB firmware behavior: 3 retries starting at 30 s
    /// (30 s, 60 s, 120 s).
    pub fn paper_default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_secs(30),
        }
    }

    /// Builds a policy; `max_retries == 0` disables retrying (refused
    /// sessions are blocked immediately).
    pub fn new(max_retries: u8, base_backoff: SimDuration) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff,
        }
    }

    /// Maximum retry attempts per session.
    pub fn max_retries(&self) -> u8 {
        self.max_retries
    }

    /// Backoff before the first retry.
    pub fn base_backoff(&self) -> SimDuration {
        self.base_backoff
    }

    /// The wait before retry number `attempt` (0-based):
    /// `base_backoff * 2^attempt`, saturating.
    pub fn backoff(&self, attempt: u8) -> SimDuration {
        let factor = 1u64.checked_shl(u32::from(attempt)).unwrap_or(u64::MAX);
        SimDuration::from_secs(self.base_backoff.as_secs().saturating_mul(factor))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

/// All knobs of one simulation run. Defaults are the paper's baseline
/// configuration: 1,000-subscriber neighborhoods, 10 GB per peer, two
/// stream slots, LFU with 3-day history, balanced placement, 5-minute
/// segments at 8.06 Mb/s, and a measurement window that skips a warm-up
/// prefix of the trace.
///
/// # Examples
///
/// ```
/// use cablevod_sim::SimConfig;
/// use cablevod_cache::StrategySpec;
///
/// let config = SimConfig::paper_default()
///     .with_neighborhood_size(500)
///     .with_strategy(StrategySpec::Lru);
/// assert_eq!(config.neighborhood_size(), 500);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    neighborhood_size: u32,
    per_peer_storage: DataSize,
    stream_slots: u8,
    strategy: StrategySpec,
    placement: PlacementPolicy,
    segment_len: SimDuration,
    stream_rate: BitRate,
    warmup_days: u64,
    coax_spec: CoaxSpec,
    replication: u8,
    fill_override: Option<FillPolicy>,
    faults: FaultPlan,
    admission: AdmissionMode,
    retry: RetryPolicy,
}

impl SimConfig {
    /// The paper's baseline configuration.
    pub fn paper_default() -> Self {
        SimConfig {
            neighborhood_size: 1_000,
            per_peer_storage: DEFAULT_CONTRIBUTION,
            stream_slots: DEFAULT_STREAM_SLOTS,
            strategy: StrategySpec::default_lfu(),
            placement: PlacementPolicy::Balanced,
            segment_len: SimDuration::from_minutes(5),
            stream_rate: BitRate::STREAM_MPEG2_SD,
            warmup_days: 14,
            coax_spec: CoaxSpec::paper_default(),
            replication: 1,
            fill_override: None,
            faults: FaultPlan::empty(),
            admission: AdmissionMode::Counting,
            retry: RetryPolicy::paper_default(),
        }
    }

    /// Sets the neighborhood size (the paper sweeps 100–1,000).
    #[must_use]
    pub fn with_neighborhood_size(mut self, size: u32) -> Self {
        self.neighborhood_size = size;
        self
    }

    /// Sets per-peer cache contribution (the paper sweeps 1–10 GB).
    #[must_use]
    pub fn with_per_peer_storage(mut self, storage: DataSize) -> Self {
        self.per_peer_storage = storage;
        self
    }

    /// Sets the per-STB concurrent stream limit (ablation A2).
    #[must_use]
    pub fn with_stream_slots(mut self, slots: u8) -> Self {
        self.stream_slots = slots;
        self
    }

    /// Sets the cache strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: StrategySpec) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the placement policy (ablation A4).
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the segment length (ablation A3).
    #[must_use]
    pub fn with_segment_len(mut self, len: SimDuration) -> Self {
        self.segment_len = len;
        self
    }

    /// Sets the stream encoding rate.
    #[must_use]
    pub fn with_stream_rate(mut self, rate: BitRate) -> Self {
        self.stream_rate = rate;
        self
    }

    /// Sets how many leading trace days are excluded from measurement
    /// (cache warm-up). Clamped to the trace length at run time.
    #[must_use]
    pub fn with_warmup_days(mut self, days: u64) -> Self {
        self.warmup_days = days;
        self
    }

    /// Sets the coax capacity envelope.
    #[must_use]
    pub fn with_coax_spec(mut self, spec: CoaxSpec) -> Self {
        self.coax_spec = spec;
        self
    }

    /// Sets the per-segment replication factor (ablation A5).
    #[must_use]
    pub fn with_replication(mut self, replication: u8) -> Self {
        self.replication = replication;
        self
    }

    /// Overrides how admitted content is materialized (ablation A1):
    /// `FillPolicy::Prefetch` models proactive push, replacing the paper's
    /// capture-on-broadcast.
    #[must_use]
    pub fn with_fill_override(mut self, fill: FillPolicy) -> Self {
        self.fill_override = Some(fill);
        self
    }

    /// Neighborhood size.
    pub fn neighborhood_size(&self) -> u32 {
        self.neighborhood_size
    }

    /// Per-peer storage contribution.
    pub fn per_peer_storage(&self) -> DataSize {
        self.per_peer_storage
    }

    /// Per-STB stream limit.
    pub fn stream_slots(&self) -> u8 {
        self.stream_slots
    }

    /// Cache strategy.
    pub fn strategy(&self) -> StrategySpec {
        self.strategy
    }

    /// Placement policy.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Segment length.
    pub fn segment_len(&self) -> SimDuration {
        self.segment_len
    }

    /// Stream rate.
    pub fn stream_rate(&self) -> BitRate {
        self.stream_rate
    }

    /// Warm-up days excluded from measurement.
    pub fn warmup_days(&self) -> u64 {
        self.warmup_days
    }

    /// Coax capacity envelope.
    pub fn coax_spec(&self) -> &CoaxSpec {
        &self.coax_spec
    }

    /// Replication factor.
    pub fn replication(&self) -> u8 {
        self.replication
    }

    /// Fill-policy override, if any.
    pub fn fill_override(&self) -> Option<FillPolicy> {
        self.fill_override
    }

    /// Sets the fault plan the run overlays on the plant (see the crate
    /// docs, *Fault model*). The default is [`FaultPlan::empty`] — a
    /// healthy plant.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the admission mode. The default, [`AdmissionMode::Counting`],
    /// preserves the paper's counted-not-blocked semantics exactly.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the retry/backoff policy used under
    /// [`AdmissionMode::Enforcing`].
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The fault plan overlaid on the plant.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The admission mode.
    pub fn admission(&self) -> AdmissionMode {
        self.admission
    }

    /// The retry/backoff policy.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Total cache capacity of a full-size neighborhood under this config.
    pub fn neighborhood_cache_capacity(&self) -> DataSize {
        self.per_peer_storage * u64::from(self.neighborhood_size)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for zero sizes/rates.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.neighborhood_size == 0 {
            return Err(SimError::Config {
                reason: "neighborhood size must be positive".into(),
            });
        }
        if self.segment_len.as_secs() == 0 {
            return Err(SimError::Config {
                reason: "segment length must be positive".into(),
            });
        }
        if self.stream_rate.as_bps() == 0 {
            return Err(SimError::Config {
                reason: "stream rate must be positive".into(),
            });
        }
        if self.replication == 0 {
            return Err(SimError::Config {
                reason: "replication must be at least 1".into(),
            });
        }
        if self.retry.max_retries() > 0 && self.retry.base_backoff().as_secs() == 0 {
            return Err(SimError::Config {
                reason: "retry base backoff must be positive when retries are enabled".into(),
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_paper_constants() {
        let c = SimConfig::paper_default();
        assert_eq!(c.neighborhood_size(), 1_000);
        assert_eq!(c.per_peer_storage(), DataSize::from_gigabytes(10));
        assert_eq!(c.stream_slots(), 2);
        assert_eq!(c.segment_len(), SimDuration::from_minutes(5));
        assert_eq!(c.stream_rate(), BitRate::STREAM_MPEG2_SD);
        assert_eq!(
            c.neighborhood_cache_capacity(),
            DataSize::from_terabytes(10)
        );
        c.validate().expect("default config is valid");
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimConfig::paper_default()
            .with_neighborhood_size(100)
            .with_per_peer_storage(DataSize::from_gigabytes(1))
            .with_replication(2);
        assert_eq!(
            c.neighborhood_cache_capacity(),
            DataSize::from_gigabytes(100)
        );
        assert_eq!(c.replication(), 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SimConfig::paper_default()
            .with_neighborhood_size(0)
            .validate()
            .is_err());
        assert!(SimConfig::paper_default()
            .with_segment_len(SimDuration::ZERO)
            .validate()
            .is_err());
        assert!(SimConfig::paper_default()
            .with_replication(0)
            .validate()
            .is_err());
        assert!(SimConfig::paper_default()
            .with_stream_rate(BitRate::ZERO)
            .validate()
            .is_err());
    }
}
