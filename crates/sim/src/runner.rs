//! Parallel parameter sweeps.
//!
//! Every evaluation figure sweeps a parameter (cache size, neighborhood
//! size, history length, scale factors). [`run_sweep`] executes independent
//! simulation runs on all available cores with deterministic result
//! ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cablevod_trace::record::Trace;

use crate::config::SimConfig;
use crate::engine::run;
use crate::error::SimError;
use crate::report::SimReport;

/// Runs one simulation per `(label, config)` pair, in parallel, returning
/// results in input order.
pub fn run_sweep<L: Clone + Send + Sync>(
    trace: &Trace,
    jobs: &[(L, SimConfig)],
) -> Vec<(L, Result<SimReport, SimError>)> {
    let n_threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(jobs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<SimReport, SimError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let result = run(trace, &jobs[i].1);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    jobs.iter()
        .zip(results)
        .map(|((label, _), slot)| {
            let result = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job index was visited");
            (label.clone(), result)
        })
        .collect()
}

/// Like [`run_sweep`] but each job carries its own trace (the scaling
/// experiments of Figs 15–16 simulate differently-scaled traces).
pub fn run_sweep_traces<L: Clone + Send + Sync>(
    jobs: &[(L, Trace, SimConfig)],
) -> Vec<(L, Result<SimReport, SimError>)> {
    let n_threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(jobs.len().max(1));

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<Result<SimReport, SimError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (_, trace, config) = &jobs[i];
                let result = run(trace, config);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    jobs.iter()
        .zip(results)
        .map(|((label, _, _), slot)| {
            let result = slot
                .into_inner()
                .expect("result slot poisoned")
                .expect("every job index was visited");
            (label.clone(), result)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_hfc::units::DataSize;
    use cablevod_trace::synth::{generate, SynthConfig};

    #[test]
    fn sweep_matches_individual_runs_in_order() {
        let trace = generate(&SynthConfig {
            users: 300,
            programs: 80,
            days: 4,
            ..SynthConfig::smoke_test()
        });
        let jobs: Vec<(u64, SimConfig)> = [1u64, 2, 4]
            .into_iter()
            .map(|gb| {
                (
                    gb,
                    SimConfig::paper_default()
                        .with_neighborhood_size(150)
                        .with_per_peer_storage(DataSize::from_gigabytes(gb))
                        .with_warmup_days(1),
                )
            })
            .collect();
        let swept = run_sweep(&trace, &jobs);
        assert_eq!(swept.len(), 3);
        for ((label, result), (expected_label, config)) in swept.iter().zip(&jobs) {
            assert_eq!(label, expected_label);
            let direct = run(&trace, config).expect("runs");
            assert_eq!(result.as_ref().expect("runs"), &direct, "label {label}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let trace = generate(&SynthConfig {
            users: 50,
            programs: 10,
            days: 2,
            ..SynthConfig::smoke_test()
        });
        let jobs: Vec<((), SimConfig)> = Vec::new();
        assert!(run_sweep(&trace, &jobs).is_empty());
    }
}
