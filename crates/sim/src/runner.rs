//! Parallel execution: the work-conserving hybrid pool.
//!
//! Two layers of parallelism used to own separate pools — [`run_sweep`]
//! / the [`Scenario`](crate::Scenario) executors scheduled *independent
//! simulation runs* (one per parameter point), while
//! [`crate::engine::run_parallel`] sharded *one simulation* per
//! neighborhood — and a sweep containing one big sharded cell serialized
//! behind it. Both layers now draw workers from one process-wide
//! **permit ledger** sized to `default_threads`:
//!
//! * the calling thread always works (an implicit permit), so every
//!   entry point makes progress even when the machine is saturated —
//!   acquisition never blocks and nesting cannot deadlock;
//! * extra workers exist only while a `Permit` is held; a permit
//!   returns to the ledger the moment its worker runs out of work, not
//!   when the whole call finishes;
//! * `run_indexed` **recruits**: between jobs, its workers check the
//!   ledger and spawn additional scoped workers when capacity has been
//!   freed elsewhere. A sweep that started single-file while a sharded
//!   job held the machine fans out as soon as that job's shards drain —
//!   and vice versa, small grid cells pack around a big sharded job
//!   instead of idling behind it.
//!
//! The streaming shard driver ([`crate::engine`]'s cooperative tasks)
//! sizes its worker set from the same ledger at entry; its shard tasks
//! cannot migrate between workers mid-run, so it does not recruit, but
//! its permits still free early as workers finish.
//!
//! Scheduling never changes results: `run_indexed` returns results in
//! index order no matter which worker ran which job, and every engine
//! path is bit-identical across worker counts by construction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::Scope;

use cablevod_trace::source::TraceSource;

use crate::config::SimConfig;
use crate::engine::run;
use crate::error::SimError;
use crate::report::SimReport;

/// The process-wide extra-worker budget: `default_threads() - 1` units
/// (the caller's own thread is the implicit extra). Shared by the sweep
/// and shard layers so their composition cannot oversubscribe the
/// machine.
struct Ledger {
    free: Mutex<usize>,
}

fn ledger() -> &'static Ledger {
    static LEDGER: OnceLock<Ledger> = OnceLock::new();
    LEDGER.get_or_init(|| Ledger {
        free: Mutex::new(default_threads().saturating_sub(1)),
    })
}

/// One unit of worker capacity checked out of the ledger; returns on
/// drop — including during unwinding, so a panicking worker never leaks
/// capacity.
pub(crate) struct Permit(());

impl Drop for Permit {
    fn drop(&mut self) {
        *ledger().free.lock().expect("worker ledger poisoned") += 1;
    }
}

/// Takes one extra-worker permit if the ledger has capacity. Never
/// blocks: a caller that gets `None` simply does the work on its own
/// thread.
pub(crate) fn take_permit() -> Option<Permit> {
    let mut free = ledger().free.lock().expect("worker ledger poisoned");
    if *free == 0 {
        return None;
    }
    *free -= 1;
    Some(Permit(()))
}

/// Takes up to `want` permits (possibly zero — whatever the ledger has).
pub(crate) fn take_permits(want: usize) -> Vec<Permit> {
    let mut free = ledger().free.lock().expect("worker ledger poisoned");
    let n = (*free).min(want);
    *free -= n;
    (0..n).map(|_| Permit(())).collect()
}

/// Shared state of one `run_indexed` call: the stolen-index counter, the
/// recruitment budget, and the result sink.
struct IndexedRun<'env, R, F> {
    count: usize,
    /// Max workers ever active at once (caller included).
    cap: usize,
    next: AtomicUsize,
    /// Workers spawned so far (caller excluded); only grows, so `cap` is
    /// an upper bound on concurrency, not a steady-state target.
    spawned: AtomicUsize,
    sink: Mutex<Vec<(u32, R)>>,
    job: &'env F,
}

impl<R: Send, F: Fn(usize) -> R + Sync> IndexedRun<'_, R, F> {
    /// Claims indexes off the shared counter until none remain; between
    /// jobs, tries to recruit another worker for the leftover indexes if
    /// the ledger has freed capacity. The permit (if any) releases when
    /// this worker runs dry.
    fn work<'scope, 'env2>(
        &'env2 self,
        scope: &'scope Scope<'scope, 'env2>,
        permit: Option<Permit>,
    ) {
        let _permit = permit;
        let mut mine: Vec<(u32, R)> = Vec::new();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.count {
                break;
            }
            self.recruit(scope);
            mine.push((i as u32, (self.job)(i)));
        }
        if !mine.is_empty() {
            self.sink
                .lock()
                .expect("pool result sink poisoned")
                .extend(mine);
        }
    }

    /// Spawns at most one extra worker — if the cap allows it, unclaimed
    /// indexes remain, and the ledger grants a permit. Called once per
    /// job, so fan-out is gradual and stops the moment the ledger dries
    /// up again.
    fn recruit<'scope, 'env2>(&'env2 self, scope: &'scope Scope<'scope, 'env2>) {
        loop {
            let spawned = self.spawned.load(Ordering::Relaxed);
            if spawned + 1 >= self.cap || self.next.load(Ordering::Relaxed) >= self.count {
                return;
            }
            if self
                .spawned
                .compare_exchange(spawned, spawned + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let Some(permit) = take_permit() else {
                // Give the budget slot back so a later attempt (after the
                // ledger refills) can still use it.
                self.spawned.fetch_sub(1, Ordering::Relaxed);
                return;
            };
            scope.spawn(move || self.work(scope, Some(permit)));
            return;
        }
    }
}

/// Runs `job(0..count)` on up to `threads` workers (clamped to `count`),
/// collecting results in index order. Single-threaded requests run inline
/// with no pool setup.
///
/// Work is stolen index-by-index off a shared atomic counter; each worker
/// batches its `(index, result)` pairs privately and results are stitched
/// back into index order once, at the end. Workers beyond the caller come
/// from the shared [`Ledger`] and are recruited *during* the run as
/// capacity frees up elsewhere, so `threads` is a ceiling — the actual
/// worker count adapts to what the rest of the process is doing.
pub(crate) fn run_indexed<R, F>(count: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let cap = threads.clamp(1, count);
    if cap == 1 {
        return (0..count).map(job).collect();
    }

    let shared = IndexedRun {
        count,
        cap,
        next: AtomicUsize::new(0),
        spawned: AtomicUsize::new(0),
        sink: Mutex::new(Vec::with_capacity(count)),
        job: &job,
    };
    std::thread::scope(|scope| shared.work(scope, None));

    let mut merged: Vec<Option<R>> = (0..count).map(|_| None).collect();
    for (i, result) in shared.sink.into_inner().expect("pool result sink poisoned") {
        merged[i as usize] = Some(result);
    }
    merged
        .into_iter()
        .map(|slot| slot.expect("every job index was visited"))
        .collect()
}

/// The default worker count: every available core.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// Runs one simulation per `(label, config)` pair, in parallel, returning
/// results in input order.
///
/// Generic over [`TraceSource`], so a sweep can run against a resident
/// [`Trace`](cablevod_trace::record::Trace) or replay an on-disk columnar file without each job holding
/// the full record vector.
pub fn run_sweep<L: Clone + Send + Sync, S: TraceSource + ?Sized>(
    source: &S,
    jobs: &[(L, SimConfig)],
) -> Vec<(L, Result<SimReport, SimError>)> {
    let results = run_indexed(jobs.len(), default_threads(), |i| run(source, &jobs[i].1));
    jobs.iter()
        .zip(results)
        .map(|((label, _), result)| (label.clone(), result))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_hfc::units::DataSize;
    use cablevod_trace::synth::{generate, SynthConfig};

    #[test]
    fn sweep_matches_individual_runs_in_order() {
        let trace = generate(&SynthConfig {
            users: 300,
            programs: 80,
            days: 4,
            ..SynthConfig::smoke_test()
        });
        let jobs: Vec<(u64, SimConfig)> = [1u64, 2, 4]
            .into_iter()
            .map(|gb| {
                (
                    gb,
                    SimConfig::paper_default()
                        .with_neighborhood_size(150)
                        .with_per_peer_storage(DataSize::from_gigabytes(gb))
                        .with_warmup_days(1),
                )
            })
            .collect();
        let swept = run_sweep(&trace, &jobs);
        assert_eq!(swept.len(), 3);
        for ((label, result), (expected_label, config)) in swept.iter().zip(&jobs) {
            assert_eq!(label, expected_label);
            let direct = run(&trace, config).expect("runs");
            assert_eq!(result.as_ref().expect("runs"), &direct, "label {label}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let trace = generate(&SynthConfig {
            users: 50,
            programs: 10,
            days: 2,
            ..SynthConfig::smoke_test()
        });
        let jobs: Vec<((), SimConfig)> = Vec::new();
        assert!(run_sweep(&trace, &jobs).is_empty());
    }

    #[test]
    fn run_indexed_visits_every_index_in_order() {
        for threads in [1, 2, 7] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(
                out,
                (0..23).map(|i| i * i).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn nested_runs_share_the_ledger_without_deadlock() {
        // A sweep of sharded-shaped jobs: each outer job fans out again.
        // Whatever the ledger hands out, every index at both levels must
        // run exactly once and land in order.
        let out = run_indexed(5, 4, |outer| run_indexed(7, 4, move |inner| (outer, inner)));
        for (outer, inners) in out.into_iter().enumerate() {
            assert_eq!(
                inners,
                (0..7).map(|inner| (outer, inner)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn drained_ledger_still_completes_inline() {
        // With every permit checked out, run_indexed degrades to the
        // caller's thread alone — and still visits every index.
        let hoard = take_permits(usize::MAX);
        let out = run_indexed(11, 8, |i| i + 1);
        assert_eq!(out, (1..=11).collect::<Vec<_>>());
        drop(hoard);
    }
}
