//! Parallel execution helpers.
//!
//! Two layers of parallelism share one primitive:
//!
//! * [`run_sweep`] (and the [`Scenario`](crate::Scenario) executor built
//!   on the same pool) execute *independent simulation runs* (one per
//!   parameter point) on all available cores, the way every evaluation
//!   figure consumes the engine;
//! * [`crate::engine::run_parallel`] executes *one simulation* by sharding
//!   it per neighborhood and scheduling the shards over a worker pool.
//!
//! Both use `run_indexed`: a scoped work-stealing pool that runs
//! `job(i)` for every index exactly once and returns results in input
//! order, so output ordering is deterministic no matter which worker ran
//! which job.
//!
//! The old `run_sweep_traces` (a sweep where every job carried its own
//! pre-built resident trace) is gone: sweeps over distinct workloads are
//! now [`Scenario`](crate::Scenario) points with per-point
//! [`SourceSpec`](crate::SourceSpec)s, so each job *builds* its trace
//! inside the job and drops it on completion instead of the caller
//! holding every variant resident for the sweep's whole lifetime.

use std::sync::atomic::{AtomicUsize, Ordering};

use cablevod_trace::source::TraceSource;

use crate::config::SimConfig;
use crate::engine::run;
use crate::error::SimError;
use crate::report::SimReport;

/// Runs `job(0..count)` on up to `threads` workers (clamped to `count`),
/// collecting results in index order. Single-threaded requests run inline
/// with no pool setup.
///
/// Work is still stolen index-by-index off a shared atomic counter, but
/// each worker owns a contiguous private buffer of `(index, result)`
/// pairs — the hot path takes no lock per job; results are stitched back
/// into index order once, after the pool joins.
pub(crate) fn run_indexed<R, F>(count: usize, threads: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, count);
    if threads == 1 {
        return (0..count).map(job).collect();
    }

    let next = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(u32, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(u32, R)> = Vec::with_capacity(count / threads + 1);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i as u32, job(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    let mut merged: Vec<Option<R>> = (0..count).map(|_| None).collect();
    for (i, result) in worker_outputs.into_iter().flatten() {
        merged[i as usize] = Some(result);
    }
    merged
        .into_iter()
        .map(|slot| slot.expect("every job index was visited"))
        .collect()
}

/// The default worker count: every available core.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// Runs one simulation per `(label, config)` pair, in parallel, returning
/// results in input order.
///
/// Generic over [`TraceSource`], so a sweep can run against a resident
/// [`Trace`](cablevod_trace::record::Trace) or replay an on-disk columnar file without each job holding
/// the full record vector.
pub fn run_sweep<L: Clone + Send + Sync, S: TraceSource + ?Sized>(
    source: &S,
    jobs: &[(L, SimConfig)],
) -> Vec<(L, Result<SimReport, SimError>)> {
    let results = run_indexed(jobs.len(), default_threads(), |i| run(source, &jobs[i].1));
    jobs.iter()
        .zip(results)
        .map(|((label, _), result)| (label.clone(), result))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_hfc::units::DataSize;
    use cablevod_trace::synth::{generate, SynthConfig};

    #[test]
    fn sweep_matches_individual_runs_in_order() {
        let trace = generate(&SynthConfig {
            users: 300,
            programs: 80,
            days: 4,
            ..SynthConfig::smoke_test()
        });
        let jobs: Vec<(u64, SimConfig)> = [1u64, 2, 4]
            .into_iter()
            .map(|gb| {
                (
                    gb,
                    SimConfig::paper_default()
                        .with_neighborhood_size(150)
                        .with_per_peer_storage(DataSize::from_gigabytes(gb))
                        .with_warmup_days(1),
                )
            })
            .collect();
        let swept = run_sweep(&trace, &jobs);
        assert_eq!(swept.len(), 3);
        for ((label, result), (expected_label, config)) in swept.iter().zip(&jobs) {
            assert_eq!(label, expected_label);
            let direct = run(&trace, config).expect("runs");
            assert_eq!(result.as_ref().expect("runs"), &direct, "label {label}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let trace = generate(&SynthConfig {
            users: 50,
            programs: 10,
            days: 2,
            ..SynthConfig::smoke_test()
        });
        let jobs: Vec<((), SimConfig)> = Vec::new();
        assert!(run_sweep(&trace, &jobs).is_empty());
    }

    #[test]
    fn run_indexed_visits_every_index_in_order() {
        for threads in [1, 2, 7] {
            let out = run_indexed(23, threads, |i| i * i);
            assert_eq!(
                out,
                (0..23).map(|i| i * i).collect::<Vec<_>>(),
                "threads {threads}"
            );
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }
}
