//! Multicast baselines quantifying §IV-A ("Why Not Multicast").
//!
//! The paper rejects multicast with two trace observations: program
//! popularity is too skewed (most programs never have enough concurrent
//! viewers to form a tree) and sessions are too short (mid-stream
//! departures wreck tree maintenance). This module makes the argument
//! quantitative with two server-cost models run on the same trace:
//!
//! * [`ideal_multicast_peak`] — a *lower bound*: the server streams each
//!   program at most once at any instant, and every concurrent viewer
//!   shares it for free (infinite peer playback caches, zero patch cost,
//!   zero tree-maintenance cost). No real multicast system beats this.
//! * [`batched_multicast_peak`] — a realistic batching/patching model: a
//!   viewer joining within `window` of an active stream's start shares it
//!   but unicasts the missed prefix (patch); otherwise a new stream
//!   starts.
//!
//! If the cooperative cache outperforms even the *ideal* bound during peak
//! hours, the paper's architectural choice is vindicated on this workload.
//!
//! Both models treat sessions as position-agnostic (seek offsets, when
//! present, only shorten the watched span) — a simplification that favors
//! multicast, which strengthens the conclusion when the cache still wins.

use std::collections::HashMap;

use cablevod_hfc::ids::ProgramId;
use cablevod_hfc::meter::{RateMeter, RateStats};
use cablevod_hfc::units::{BitRate, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use cablevod_trace::record::Trace;

/// Sharing statistics the multicast analysis reports alongside cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MulticastStats {
    /// Peak-window server statistics.
    pub server_peak: RateStats,
    /// Total sessions considered.
    pub sessions: u64,
    /// Mean viewers sharing one server stream (1.0 = no sharing at all).
    pub mean_sharing: f64,
}

/// The unbeatable multicast lower bound: server rate at time `t` is
/// `stream_rate x |{programs with >= 1 active viewer at t}|`.
pub fn ideal_multicast_peak(
    trace: &Trace,
    rate: BitRate,
    from_day: u64,
    to_day: u64,
) -> MulticastStats {
    // Sweep per program: union of session intervals.
    let mut per_program: HashMap<ProgramId, Vec<(SimTime, SimTime)>> = HashMap::new();
    let mut viewer_secs = 0u64;
    for r in trace.iter() {
        let length = trace.catalog().length(r.program).unwrap_or(r.duration);
        let watched = r.watched(length);
        if watched.as_secs() == 0 {
            continue;
        }
        viewer_secs += watched.as_secs();
        per_program
            .entry(r.program)
            .or_default()
            .push((r.start, r.start + watched));
    }

    let mut meter = RateMeter::hourly();
    let mut stream_secs = 0u64;
    for intervals in per_program.values_mut() {
        intervals.sort_unstable();
        // Merge overlapping intervals; each merged run is one server stream.
        let mut current: Option<(SimTime, SimTime)> = None;
        for &(s, e) in intervals.iter() {
            match current {
                Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    meter.record(cs, ce, rate * ce.since(cs));
                    stream_secs += ce.since(cs).as_secs();
                    current = Some((s, e));
                }
                None => current = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = current {
            meter.record(cs, ce, rate * ce.since(cs));
            stream_secs += ce.since(cs).as_secs();
        }
    }

    MulticastStats {
        server_peak: meter.peak_stats(from_day, to_day),
        sessions: trace.len() as u64,
        mean_sharing: if stream_secs == 0 {
            0.0
        } else {
            viewer_secs as f64 / stream_secs as f64
        },
    }
}

/// Batching + patching multicast: sessions for a program starting within
/// `window` of an active stream's start join it and unicast the missed
/// prefix; later arrivals start a new stream. The stream runs until its
/// last member detaches.
pub fn batched_multicast_peak(
    trace: &Trace,
    rate: BitRate,
    window: SimDuration,
    from_day: u64,
    to_day: u64,
) -> MulticastStats {
    struct Group {
        start: SimTime,
        end: SimTime,
        members: u64,
    }
    let mut active: HashMap<ProgramId, Group> = HashMap::new();
    let mut meter = RateMeter::hourly();
    let mut groups = 0u64;
    let mut members_total = 0u64;

    fn flush(g: Group, rate: BitRate, meter: &mut RateMeter) {
        meter.record(g.start, g.end, rate * g.end.since(g.start));
    }

    for r in trace.iter() {
        let length = trace.catalog().length(r.program).unwrap_or(r.duration);
        let watched = r.watched(length);
        if watched.as_secs() == 0 {
            continue;
        }
        let end = r.start + watched;
        let joined = match active.get_mut(&r.program) {
            Some(g) if r.start.since(g.start) <= window && r.start <= g.end => {
                // Join: patch the missed prefix, extend the stream if this
                // member outlasts it.
                let missed = r.start.since(g.start).min(watched);
                if missed.as_secs() > 0 {
                    meter.record(r.start, r.start + missed, rate * missed);
                }
                g.end = g.end.max(end);
                g.members += 1;
                members_total += 1;
                true
            }
            _ => false,
        };
        if !joined {
            if let Some(g) = active.remove(&r.program) {
                flush(g, rate, &mut meter);
            }
            active.insert(
                r.program,
                Group {
                    start: r.start,
                    end,
                    members: 1,
                },
            );
            groups += 1;
            members_total += 1;
        }
    }
    for (_, g) in active.drain() {
        flush(g, rate, &mut meter);
    }

    MulticastStats {
        server_peak: meter.peak_stats(from_day, to_day),
        sessions: trace.len() as u64,
        mean_sharing: if groups == 0 {
            0.0
        } else {
            members_total as f64 / groups as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::no_cache_peak;
    use cablevod_trace::synth::{generate, SynthConfig};

    fn small_trace() -> Trace {
        generate(&SynthConfig {
            users: 800,
            programs: 200,
            days: 6,
            ..SynthConfig::smoke_test()
        })
    }

    #[test]
    fn ideal_multicast_beats_no_cache_but_not_by_catalog_size() {
        let trace = small_trace();
        let rate = BitRate::STREAM_MPEG2_SD;
        let unicast = no_cache_peak(&trace, rate, 2, trace.days());
        let ideal = ideal_multicast_peak(&trace, rate, 2, trace.days());
        assert!(
            ideal.server_peak.mean <= unicast.mean,
            "sharing can only reduce load"
        );
        // The paper's point: skew is not extreme enough for multicast to
        // collapse the load the way caching does; sharing stays modest.
        assert!(ideal.mean_sharing >= 1.0);
        assert!(
            ideal.mean_sharing < 5.0,
            "mean sharing {:.2} suspiciously high for a VoD-like trace",
            ideal.mean_sharing
        );
    }

    #[test]
    fn batching_lies_between_unicast_and_ideal() {
        let trace = small_trace();
        let rate = BitRate::STREAM_MPEG2_SD;
        let unicast = no_cache_peak(&trace, rate, 2, trace.days());
        let ideal = ideal_multicast_peak(&trace, rate, 2, trace.days());
        let batched =
            batched_multicast_peak(&trace, rate, SimDuration::from_minutes(10), 2, trace.days());
        assert!(batched.server_peak.mean <= unicast.mean);
        assert!(
            batched.server_peak.mean.as_bps() as f64
                >= 0.95 * ideal.server_peak.mean.as_bps() as f64,
            "batching cannot beat the ideal bound: batched {} vs ideal {}",
            batched.server_peak.mean,
            ideal.server_peak.mean
        );
    }

    #[test]
    fn wider_batching_window_shares_more() {
        let trace = small_trace();
        let rate = BitRate::STREAM_MPEG2_SD;
        let narrow =
            batched_multicast_peak(&trace, rate, SimDuration::from_minutes(1), 2, trace.days());
        let wide =
            batched_multicast_peak(&trace, rate, SimDuration::from_minutes(30), 2, trace.days());
        assert!(wide.mean_sharing >= narrow.mean_sharing);
    }

    #[test]
    fn empty_trace_yields_zero_stats() {
        let trace = cablevod_trace::record::Trace::new(
            Vec::new(),
            cablevod_trace::catalog::ProgramCatalog::new(),
            1,
            1,
        )
        .expect("empty trace");
        let ideal = ideal_multicast_peak(&trace, BitRate::STREAM_MPEG2_SD, 0, 1);
        assert_eq!(ideal.server_peak.mean, BitRate::ZERO);
        assert_eq!(ideal.mean_sharing, 0.0);
    }
}
