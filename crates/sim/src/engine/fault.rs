//! Fault overlay for the engine: the [`FaultingPlant`] wrapper and its
//! [`AdmissionControl`].
//!
//! Every driver wraps its plant — the whole [`Topology`]
//! (serial) or one neighborhood's `ShardPlant` (sharded) — in a
//! [`FaultingPlant`], so all four driver combinations consult the same
//! degraded-plant state machine. The wrapper delegates the
//! [`SegmentPlant`] byte accounting untouched; what it adds is an
//! [`AdmissionControl`] the lifecycle consults at session starts,
//! retries, and segment continuations.
//!
//! Determinism: all admission state (fault timelines, channel occupancy,
//! retry tallies) is **strictly per-neighborhood**, matching the engine's
//! unit of isolation, so the serial and sharded drivers make identical
//! decisions in identical per-neighborhood event order. When the control
//! is inactive ([`AdmissionMode::Counting`] with an empty
//! [`FaultPlan`] — the default) the wrapper exposes no control at all and
//! the lifecycle takes its original path, byte for byte.
//!
//! [`Topology`]: cablevod_hfc::topology::Topology

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use cablevod_hfc::channels::ChannelPlan;
use cablevod_hfc::fault::{FaultTimeline, FULL_CAPACITY_PERMILLE};
use cablevod_hfc::ids::NeighborhoodId;
use cablevod_hfc::stb::StbStore;
use cablevod_hfc::units::SimTime;

use super::lifecycle::SegmentPlant;
use crate::config::{AdmissionMode, RetryPolicy, SimConfig};
use crate::error::SimError;
use crate::report::{DegradationReport, NeighborhoodDegradation};

/// What the admission control decides about one session attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum Verdict {
    /// The session starts now.
    Admit,
    /// The plant refused; the set-top box retries at `at`.
    Retry {
        /// When the retry fires.
        at: SimTime,
    },
    /// The plant refused and retries are exhausted (or disabled).
    Blocked,
}

/// One neighborhood's admission state: its fault timeline, its channel
/// occupancy, and its degradation tallies.
#[derive(Debug)]
struct FaultState {
    timeline: FaultTimeline,
    /// End times (seconds) of admitted sessions, pruned lazily — the
    /// same pattern as [`cablevod_hfc::stb::SetTopBox`]'s stream slots.
    occupancy: BinaryHeap<Reverse<u64>>,
    /// Outage recovery instants not yet measured, in time order.
    pending_recoveries: VecDeque<u64>,
    blocked: u64,
    interrupted: u64,
    retries: u64,
    recoveries_measured: u64,
    recovery_lag_total_secs: u64,
    recovery_lag_max_secs: u64,
    /// `admitted_after[k]` — sessions admitted after exactly `k` retries.
    admitted_after: Vec<u64>,
}

impl FaultState {
    fn new(timeline: FaultTimeline, max_retries: u8) -> Self {
        let pending_recoveries = timeline.outage_ends().map(|t| t.as_secs()).collect();
        FaultState {
            timeline,
            occupancy: BinaryHeap::new(),
            pending_recoveries,
            blocked: 0,
            interrupted: 0,
            retries: 0,
            recoveries_measured: 0,
            recovery_lag_total_secs: 0,
            recovery_lag_max_secs: 0,
            admitted_after: vec![0; usize::from(max_retries) + 1],
        }
    }

    /// Streams concurrently admitted at `t` (sessions ending at or
    /// before `t` free their slot first).
    fn occupancy_at(&mut self, t: u64) -> u64 {
        while self.occupancy.peek().is_some_and(|&Reverse(end)| end <= t) {
            self.occupancy.pop();
        }
        self.occupancy.len() as u64
    }

    /// Measures time-to-recover: the first admission at or after an
    /// outage's recovery instant records how long the neighborhood took
    /// to carry a session again.
    fn note_admission(&mut self, t: u64) {
        while self.pending_recoveries.front().is_some_and(|&end| end <= t) {
            let end = self.pending_recoveries.pop_front().expect("peeked");
            let lag = t - end;
            self.recoveries_measured += 1;
            self.recovery_lag_total_secs += lag;
            self.recovery_lag_max_secs = self.recovery_lag_max_secs.max(lag);
        }
    }

    fn into_degradation(self) -> NeighborhoodDegradation {
        NeighborhoodDegradation {
            blocked_sessions: self.blocked,
            interrupted_sessions: self.interrupted,
            retries: self.retries,
            outage_secs: self.timeline.outage_secs(),
            recoveries_measured: self.recoveries_measured,
            recovery_lag_total_secs: self.recovery_lag_total_secs,
            recovery_lag_max_secs: self.recovery_lag_max_secs,
        }
    }
}

/// The degraded-plant admission state machine for the contiguous
/// neighborhood range one driver owns (all of them serially, exactly one
/// per shard).
#[derive(Debug)]
pub(super) struct AdmissionControl {
    mode: AdmissionMode,
    retry: RetryPolicy,
    /// Healthy channel budget in concurrent streams (free QAM channels ×
    /// streams per channel); derates scale it down per neighborhood.
    budget: u64,
    /// First neighborhood index this control covers.
    base: u32,
    states: Vec<FaultState>,
}

impl AdmissionControl {
    /// Builds the control for neighborhoods `base..base + count`.
    /// Returns `None` — no overlay at all — when the config is the
    /// default counting mode over a healthy plant, so those runs keep
    /// their original byte-identical path.
    pub(super) fn build(config: &SimConfig, base: u32, count: usize) -> Option<Self> {
        if config.admission() == AdmissionMode::Counting && config.faults().is_empty() {
            return None;
        }
        let plan = ChannelPlan::from_spec(config.coax_spec());
        let budget = u64::from(plan.free_channels())
            * u64::from(plan.streams_per_channel(config.stream_rate()));
        let max_retries = config.retry().max_retries();
        let states = (0..count)
            .map(|i| {
                let nbhd = NeighborhoodId::new(base + i as u32);
                FaultState::new(config.faults().timeline(nbhd), max_retries)
            })
            .collect();
        Some(AdmissionControl {
            mode: config.admission(),
            retry: config.retry(),
            budget,
            base,
            states,
        })
    }

    /// Whether refusals really block/interrupt (vs only being counted).
    pub(super) fn enforcing(&self) -> bool {
        self.mode == AdmissionMode::Enforcing
    }

    fn state(&mut self, nbhd: u32) -> &mut FaultState {
        &mut self.states[(nbhd - self.base) as usize]
    }

    /// Decides one session attempt at `start` (planned end `end`).
    /// `retries_used` is how many retries the session has already spent.
    ///
    /// In counting mode a refusal is tallied as a blocked-worthy start
    /// but the session is admitted anyway — the trajectory, and with it
    /// every pre-existing metric, is unchanged.
    pub(super) fn try_admit(
        &mut self,
        nbhd: u32,
        start: SimTime,
        end: SimTime,
        retries_used: u8,
    ) -> Verdict {
        let enforcing = self.enforcing();
        let (max_retries, backoff) = (self.retry.max_retries(), self.retry.backoff(retries_used));
        let budget = self.budget;
        let state = self.state(nbhd);
        let t = start.as_secs();
        let outage = state.timeline.outage_at(start).is_some();
        let capacity = budget * u64::from(state.timeline.capacity_permille_at(start))
            / u64::from(FULL_CAPACITY_PERMILLE);
        let refused = outage || state.occupancy_at(t) >= capacity;

        if refused && enforcing {
            if retries_used < max_retries {
                state.retries += 1;
                return Verdict::Retry {
                    at: start + backoff,
                };
            }
            state.blocked += 1;
            return Verdict::Blocked;
        }
        if refused {
            // Counting mode: the violation is measured, not enforced.
            state.blocked += 1;
        }
        state.note_admission(t);
        state.admitted_after[usize::from(retries_used)] += 1;
        state.occupancy.push(Reverse(end.as_secs()));
        Verdict::Admit
    }

    /// Whether an outage is active for `nbhd` at `t` (no tally).
    pub(super) fn outage_now(&mut self, nbhd: u32, t: SimTime) -> bool {
        self.state(nbhd).timeline.outage_at(t).is_some()
    }

    /// Tallies one interrupted (enforcing) or interruption-worthy
    /// (counting) session.
    pub(super) fn tally_interrupt(&mut self, nbhd: u32) {
        self.state(nbhd).interrupted += 1;
    }

    /// Folds the control into the report's degradation section.
    pub(super) fn into_report(self) -> DegradationReport {
        let mut histogram = vec![0u64; usize::from(self.retry.max_retries()) + 1];
        let per_neighborhood: Vec<NeighborhoodDegradation> = self
            .states
            .into_iter()
            .map(|state| {
                for (slot, n) in histogram.iter_mut().zip(&state.admitted_after) {
                    *slot += n;
                }
                state.into_degradation()
            })
            .collect();
        DegradationReport::from_parts(per_neighborhood, histogram)
    }
}

/// A [`SegmentPlant`] that overlays an [`AdmissionControl`] on an inner
/// plant. Byte accounting is pure delegation; the lifecycle reaches the
/// control through [`SegmentPlant::admission`].
pub(super) struct FaultingPlant<P> {
    inner: P,
    ctl: Option<AdmissionControl>,
}

impl<P: SegmentPlant> FaultingPlant<P> {
    /// Wraps `inner` for neighborhoods `base..base + count`.
    pub(super) fn new(inner: P, config: &SimConfig, base: u32, count: usize) -> Self {
        FaultingPlant {
            inner,
            ctl: AdmissionControl::build(config, base, count),
        }
    }

    /// Unwraps into the inner plant and the degradation section (if the
    /// overlay was active).
    pub(super) fn into_parts(self) -> (P, Option<DegradationReport>) {
        (self.inner, self.ctl.map(AdmissionControl::into_report))
    }
}

impl<P: SegmentPlant> SegmentPlant for FaultingPlant<P> {
    fn stbs(&mut self) -> &mut dyn StbStore {
        self.inner.stbs()
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.inner.record_miss(nbhd, start, end, size)
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.inner.record_broadcast(nbhd, start, end, size)
    }

    fn admission(&mut self) -> Option<&mut AdmissionControl> {
        self.ctl.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_hfc::fault::{FaultEvent, FaultKind, FaultPlan};
    use cablevod_hfc::units::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn outage_plan(nbhd: u32, start: u64, end: u64) -> FaultPlan {
        FaultPlan::new(vec![FaultEvent {
            scope: Some(NeighborhoodId::new(nbhd)),
            start: t(start),
            end: t(end),
            kind: FaultKind::Outage,
        }])
        .expect("valid plan")
    }

    #[test]
    fn default_config_builds_no_control() {
        let config = SimConfig::paper_default();
        assert!(AdmissionControl::build(&config, 0, 4).is_none());
    }

    #[test]
    fn enforcing_outage_retries_then_blocks() {
        let config = SimConfig::paper_default()
            .with_admission(AdmissionMode::Enforcing)
            .with_retry(RetryPolicy::new(2, SimDuration::from_secs(10)))
            .with_faults(outage_plan(0, 100, 1_000));
        let mut ctl = AdmissionControl::build(&config, 0, 1).expect("active");

        // Refused during the outage: retry at +10s, +20s, then blocked.
        assert_eq!(
            ctl.try_admit(0, t(200), t(500), 0),
            Verdict::Retry { at: t(210) }
        );
        assert_eq!(
            ctl.try_admit(0, t(210), t(500), 1),
            Verdict::Retry { at: t(230) }
        );
        assert_eq!(ctl.try_admit(0, t(230), t(500), 2), Verdict::Blocked);
        // After recovery: admitted, and the recovery lag is measured.
        assert_eq!(ctl.try_admit(0, t(1_050), t(1_500), 0), Verdict::Admit);
        let report = ctl.into_report();
        assert_eq!(report.blocked_sessions, 1);
        assert_eq!(report.retries, 2);
        assert_eq!(report.retry_histogram, vec![1, 0, 0]);
        let nbhd = &report.per_neighborhood[0];
        assert_eq!(nbhd.outage_secs, 900);
        assert_eq!(nbhd.recoveries_measured, 1);
        assert_eq!(nbhd.recovery_lag_total_secs, 50);
        assert_eq!(nbhd.recovery_lag_max_secs, 50);
    }

    #[test]
    fn counting_mode_admits_but_tallies() {
        let config = SimConfig::paper_default().with_faults(outage_plan(0, 100, 1_000));
        let mut ctl = AdmissionControl::build(&config, 0, 1).expect("active: plan is non-empty");
        assert!(!ctl.enforcing());
        assert_eq!(ctl.try_admit(0, t(200), t(500), 0), Verdict::Admit);
        assert_eq!(ctl.try_admit(0, t(2_000), t(2_500), 0), Verdict::Admit);
        let report = ctl.into_report();
        assert_eq!(
            report.blocked_sessions, 1,
            "violation counted, not enforced"
        );
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn channel_budget_exhaustion_refuses_admission() {
        // Derate neighborhood 0 to 1 permille: paper budget 160 streams
        // -> floor(160 * 1 / 1000) = 0 concurrent streams.
        let config = SimConfig::paper_default()
            .with_admission(AdmissionMode::Enforcing)
            .with_retry(RetryPolicy::new(0, SimDuration::from_secs(30)))
            .with_faults(
                FaultPlan::new(vec![FaultEvent {
                    scope: Some(NeighborhoodId::new(0)),
                    start: t(0),
                    end: t(10_000),
                    kind: FaultKind::Derate { permille: 1 },
                }])
                .expect("valid"),
            );
        let mut ctl = AdmissionControl::build(&config, 0, 2).expect("active");
        assert_eq!(ctl.try_admit(0, t(100), t(500), 0), Verdict::Blocked);
        // Neighborhood 1 is healthy and admits freely.
        assert_eq!(ctl.try_admit(1, t(100), t(500), 0), Verdict::Admit);
        // After the derate lifts, occupancy frees as sessions end.
        assert_eq!(ctl.try_admit(0, t(10_500), t(11_000), 0), Verdict::Admit);
    }

    #[test]
    fn occupancy_frees_when_sessions_end() {
        let config = SimConfig::paper_default()
            .with_admission(AdmissionMode::Enforcing)
            .with_retry(RetryPolicy::new(0, SimDuration::from_secs(30)))
            .with_faults(
                FaultPlan::new(vec![FaultEvent {
                    scope: None,
                    start: t(0),
                    end: t(100_000),
                    // 160 * 7 / 1000 = 1 concurrent stream.
                    kind: FaultKind::Derate { permille: 7 },
                }])
                .expect("valid"),
            );
        let mut ctl = AdmissionControl::build(&config, 3, 1).expect("active");
        assert_eq!(ctl.try_admit(3, t(100), t(500), 0), Verdict::Admit);
        assert_eq!(ctl.try_admit(3, t(200), t(600), 0), Verdict::Blocked);
        // The first session ended at 500: its slot is free again.
        assert_eq!(ctl.try_admit(3, t(500), t(900), 0), Verdict::Admit);
    }
}
