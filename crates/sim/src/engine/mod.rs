//! The trace-driven discrete-event simulation (§V-B).
//!
//! > "A discrete event simulation is dictated by each download event from
//! > the trace data. When an event occurs, the user who initiated the event
//! > locates the specified program in the simulated topology. This program
//! > will either be cached within the neighborhood by one of the peers, or
//! > it will be housed on a central server. In either case, the download
//! > consumes neighborhood bandwidth, and in the latter case, it also
//! > consumes server bandwidth."
//!
//! Sessions are simulated at segment granularity: a session of watched
//! length `d` issues `ceil(d / segment)` segment requests at segment
//! boundaries, each resolved independently against the neighborhood cache
//! (placement spreads a program's segments over many peers, so consecutive
//! segments can come from different peers, and a busy peer misses only the
//! segments it actually hosts).
//!
//! # Architecture: one lifecycle, three seams, four thin drivers
//!
//! There is exactly **one** session-lifecycle implementation —
//! `lifecycle::SessionDriver` — and every entry point is a thin
//! composition of pluggable pieces around it:
//!
//! ```text
//!  run / run_parallel            (mod.rs, shard.rs — the four entry drivers)
//!  ───────────────────────────────────────────────────────────────────────
//!        │ compose
//!        ▼
//!  SessionDriver                 (lifecycle.rs — THE event loop: record/heap
//!        │                        interleave, session start, segment resolve)
//!        │ is generic over
//!        ├─► RecordSupply        (stream.rs — where sessions come from)
//!        │     ResidentSupply      resident slice (+ optional shard subset)
//!        │     StreamSupply        gidx-ordered merge over chunk runs
//!        │                         (decode → ctx → filter → publish)
//!        ├─► FeedProvider        (feed.rs glue; cablevod_cache::feed — how
//!        │     PrecomputedFeed     the global popularity feed is carried)
//!        │     SharedFeed          over GlobalFeed / WatermarkFeed
//!        └─► SegmentPlant        (lifecycle.rs, shard.rs — whose bytes get
//!              Topology            accounted: the whole plant, or)
//!              ShardPlant          (one neighborhood's isolated slice)
//!        │ its index servers are built from
//!        ▼
//!  ScheduleSource                (schedule.rs glue; cablevod_cache::schedule
//!        ResidentSchedules        — how the Oracle sees its future: resident
//!        SpilledSchedules           zero-copy windows, or bounded windows
//!                                   over the on-disk schedule sidecar)
//!  ───────────────────────────────────────────────────────────────────────
//!        │ results flow into
//!        ▼
//!  report.rs                     (assemble_serial_report / merge_outcomes —
//!                                 bit-exact fold of meters and counters)
//! ```
//!
//! The four drivers pick one of each:
//!
//! | driver                | supply                      | feed            | plant      | scheduling                 |
//! |-----------------------|-----------------------------|-----------------|------------|----------------------------|
//! | serial resident       | `ResidentSupply` (all)      | `PrecomputedFeed` | `Topology`   | inline                     |
//! | serial streaming      | `StreamSupply` (no filter)  | `SharedFeed`      | `Topology`   | inline                     |
//! | sharded resident      | `ResidentSupply` (subset)   | `PrecomputedFeed` | `ShardPlant` | work-stealing pool         |
//! | sharded streaming     | `StreamSupply` (per shard)  | `SharedFeed`      | `ShardPlant` | cooperative tasks, parking |
//!
//! # Trace layouts and decode work
//!
//! Chunked sources come in two layouts (see [`cablevod_trace::columnar`]).
//! Time-major chunks partition the global order, so a sharded run's shards
//! each rescan most chunks (~`shards × file` decode work, pruned only by a
//! runtime chunk index). A **neighborhood-major** file (re-chunked at
//! import, [`cablevod_trace::rechunk`]) groups each chunk under one
//! neighborhood and carries a per-neighborhood chunk index plus per-record
//! global sequence numbers: a sharded run whose neighborhood size matches
//! hands each shard exactly its own chunks — each chunk is decoded **once**
//! per run (a counter-based test enforces this), and for non-Oracle
//! strategies no pre-pass scan is needed at all. Serial runs (and sharded
//! runs at a *different* neighborhood size) replay neighborhood-major files
//! through `stream::StreamSupply`'s sequence-number merge, so every
//! layout stays replayable by every driver.
//!
//! # Watermark-ordered global feeds
//!
//! Serial feed exactness: the serial engine publishes the feed one record
//! at a time, so at record `r` a strategy can only ever see events
//! `0..=r`. The resident drivers reproduce that bound against a feed
//! precomputed in full; the streaming drivers publish into a shared
//! [`WatermarkFeed`]: each shard publishes its own records' events as it
//! stages them — chunk-at-a-time on single-run supplies, record-at-a-time
//! on merges (see `stream.rs`) — and advances its watermark past
//! everything it has staged (publication at scan time is safe because
//! consumers bound themselves by their own record index, so an
//! early-published event is never visible early). A shard about to start
//! the session with global index `g` first waits until the cross-shard
//! minimum watermark (the *frontier*) passes `g`, then consumes events
//! `0..=g` exactly like the serial engine.
//!
//! Frontier liveness: among parked shards, the one waiting at the globally
//! smallest record index `g` needs every other shard's watermark above
//! `g`; every other parked shard's watermark is past its own staged head,
//! which is at a larger index, exhausted shards sit at `u64::MAX`, and
//! running shards advance in bounded time — so some shard can always
//! proceed, at any worker count (shards are cooperative tasks multiplexed
//! onto workers, parked when blocked). Feed memory stays bounded by
//! consumption, not trace length: every sync reports the strategy's
//! cursor back and the carrier reclaims fully consumed segments (see
//! [`cablevod_cache::watermark`]).
//!
//! Idle-neighborhood retention: the serial streaming driver answers for
//! every neighborhood's feed cursor at once, and a neighborhood between
//! (or without) sessions never syncs on its own — its stalled cursor
//! would floor the carrier's reclamation and pin the whole retained
//! window. The driver therefore runs an **idle sweep** every
//! reclamation-segment's worth of records: it syncs every index against
//! the published prefix, which consumes exactly what each neighborhood's
//! next session would consume first anyway (so results stay
//! bit-identical) and keeps live feed slots O(sweep stride + visibility
//! lag), not O(trace).
//!
//! # Windowed Oracle schedules
//!
//! Oracle is inherently offline — it needs the whole future — but the
//! future no longer needs to be resident. Streaming runs spill the
//! per-neighborhood `(time, program)` schedules to an on-disk **schedule
//! sidecar** ([`cablevod_trace::schedule`]) during the single pre-pass
//! scan they already perform (matched neighborhood-major sources scan
//! run by run; everything else merges to global time order), then replay
//! them through [`ScheduleWindow`]s whose resident state is bounded by
//! the look-ahead span plus one sidecar chunk. Resident runs keep
//! zero-copy windows over in-memory [`AccessSchedule`]s — the hot path
//! is untouched. Either carrier feeds the Oracle the identical event
//! sequence, so reports stay bit-identical (see the `schedule` submodule).
//!
//! Whichever path runs, the report is **bit-identical** — property tests
//! enforce `run == run_parallel == streaming run == streaming
//! run_parallel` across strategies, chunk sizes, chunk layouts and shard
//! counts.

mod fault;
mod feed;
mod lifecycle;
pub mod online;
mod report;
mod schedule;
mod shard;
mod stream;

#[cfg(test)]
mod tests;

use std::sync::Arc;

use cablevod_cache::{
    AccessSchedule, IndexServer, PlacementPolicy, ScheduleWindow, SharedFeed, SlotLedger,
    StrategyContext, StrategyFactory, WatermarkFeed,
};
use cablevod_hfc::ids::{NeighborhoodId, PeerId, ProgramId};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::topology::{Topology, TopologyConfig};
use cablevod_hfc::units::SimTime;
use cablevod_trace::catalog::ProgramCatalog;
use cablevod_trace::record::SessionRecord;
use cablevod_trace::source::TraceSource;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimReport;

use fault::FaultingPlant;
use feed::build_feed;
use lifecycle::{session_ctx, SessionCtx, SessionDriver, UserMap};
use report::assemble_serial_report;
use schedule::{scan_runs, spill_from_scan, ScheduleSupply, SidecarSpill};
use stream::{ResidentSupply, StreamSupply};

/// Runs one simulation of the workload in `source` under `config` and
/// returns the measured report.
///
/// This is the serial reference path: one global event heap against the
/// whole plant. A resident [`Trace`](cablevod_trace::record::Trace) takes
/// the classic precomputed hot path; chunked sources (an on-disk
/// [`ColumnarReader`](cablevod_trace::columnar::ColumnarReader) in either
/// chunk layout, a [`ChunkedTrace`](cablevod_trace::source::ChunkedTrace))
/// stream through the engine with bounded resident memory. All produce
/// bit-identical reports; [`run_parallel`] matches them too.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations, and
/// propagates trace-source failures and broken-invariant failures from
/// the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let report = run(&trace, &SimConfig::paper_default().with_neighborhood_size(100)
///     .with_warmup_days(1))?;
/// assert!(report.sessions > 0);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run<S: TraceSource + ?Sized>(source: &S, config: &SimConfig) -> Result<SimReport, SimError> {
    run_with(source, config, config.strategy().factory().as_ref())
}

/// [`run`] with an explicit strategy factory — the entry the
/// [`Simulation`](crate::Simulation) builder uses so registry-resolved
/// (out-of-tree) strategies ride the same drivers as the built-ins.
pub(crate) fn run_with<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
) -> Result<SimReport, SimError> {
    check_record_count(source)?;
    match source.resident_records() {
        Some(records) => run_resident(records, source, config, strategy),
        None => run_streaming(source, config, strategy),
    }
}

/// Runs one simulation sharded per neighborhood over `threads` workers,
/// producing a report **bit-identical** to [`run`]'s.
///
/// Correctness rests on the paper's own isolation structure — see the
/// module docs; thread count affects wall-clock only, never results.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations, and
/// propagates trace-source failures and broken-invariant failures from
/// the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, run_parallel, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let config = SimConfig::paper_default().with_neighborhood_size(100).with_warmup_days(1);
/// assert_eq!(run_parallel(&trace, &config, 4)?, run(&trace, &config)?);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run_parallel<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    threads: usize,
) -> Result<SimReport, SimError> {
    run_parallel_with(
        source,
        config,
        config.strategy().factory().as_ref(),
        threads,
    )
}

/// [`run_parallel`] with an explicit strategy factory (see [`run_with`]).
pub(crate) fn run_parallel_with<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
    threads: usize,
) -> Result<SimReport, SimError> {
    check_record_count(source)?;
    match source.resident_records() {
        Some(records) => shard::run_parallel_resident(records, source, config, strategy, threads),
        None => shard::run_parallel_streaming(source, config, strategy, threads),
    }
}

/// The source's chunk-index layout for `config`'s neighborhood size, if
/// it covers all `nbhd_count` groups — the **sweep fast path**: sharded
/// streaming replays read each shard's cell runs straight from the index
/// (no pre-pass scan, no filtering) and Oracle spills can skip the global
/// merge when every group is a single run.
fn fastpath_layout<'s, S: TraceSource + ?Sized>(
    source: &'s S,
    config: &SimConfig,
    nbhd_count: usize,
) -> Option<&'s cablevod_trace::source::NeighborhoodLayout> {
    source
        .neighborhood_layout_for(config.neighborhood_size())
        .filter(|layout| layout.group_count() == nbhd_count)
}

/// Whether a streaming replay of `source` under `config` hits the sweep
/// fast path (see [`fastpath_layout`]; the neighborhood count mirrors
/// [`Topology::build`]'s `ceil(users / size)`). Surfaced by the
/// [`Simulation`](crate::Simulation) builder as
/// [`RunTelemetry::fastpath`](crate::RunTelemetry).
pub(crate) fn streaming_fastpath<S: TraceSource + ?Sized>(source: &S, config: &SimConfig) -> bool {
    let nbhd_count = u64::from(source.user_count())
        .div_ceil(u64::from(config.neighborhood_size().max(1)))
        .max(1) as usize;
    fastpath_layout(source, config, nbhd_count).is_some()
}

/// Session indices ride in `u32` heap entries on every path (resident and
/// streaming), so traces beyond 2^32 records are rejected up front rather
/// than silently wrapping.
fn check_record_count<S: TraceSource + ?Sized>(source: &S) -> Result<(), SimError> {
    if source.record_count() > u64::from(u32::MAX) {
        return Err(SimError::Config {
            reason: "traces beyond 2^32 records are not supported".into(),
        });
    }
    Ok(())
}

fn build_topology<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
) -> Result<Topology, SimError> {
    build_topology_for(source.user_count(), config)
}

/// Builds the plant for a subscriber count with no trace in hand (the
/// online tier knows its population from an [`online::OnlineSpec`], not
/// a source).
fn build_topology_for(users: u32, config: &SimConfig) -> Result<Topology, SimError> {
    Ok(Topology::build(
        TopologyConfig::new(users, config.neighborhood_size())
            .with_per_peer_storage(config.per_peer_storage())
            .with_stream_slots(config.stream_slots())
            .with_coax_spec(*config.coax_spec()),
    )?)
}

/// Precomputes the per-session context table (one pass; resident paths
/// only — streaming paths compute contexts at ingestion).
fn precompute_sessions(
    records: &[SessionRecord],
    catalog: &ProgramCatalog,
    users: &UserMap,
    segmenter: &Segmenter,
) -> Result<Vec<SessionCtx>, SimError> {
    let seg_len = segmenter.segment_len().as_secs();
    records
        .iter()
        .map(|rec| session_ctx(rec, catalog, users, seg_len))
        .collect()
}

/// Program slot costs, indexed by program — what Oracle schedules charge.
fn schedule_costs(catalog: &ProgramCatalog, config: &SimConfig, segmenter: &Segmenter) -> Vec<u32> {
    catalog
        .iter()
        .map(|(_, info)| {
            u32::from(segmenter.segment_count(info.length)) * u32::from(config.replication())
        })
        .collect()
}

/// Builds the per-neighborhood Oracle schedules from per-neighborhood
/// event lists.
fn schedules_from_events(
    per_nbhd: Vec<Vec<(SimTime, ProgramId)>>,
    costs: &[u32],
) -> Vec<Option<Arc<AccessSchedule>>> {
    per_nbhd
        .into_iter()
        .map(|events| {
            Some(Arc::new(AccessSchedule::from_events(
                events,
                costs.to_vec(),
            )))
        })
        .collect()
}

/// Builds the per-neighborhood Oracle schedules from a resident record
/// slice (a no-schedule supply for strategies that do not need them).
/// The scan walks the records in trace order, so each neighborhood's
/// event list arrives pre-sorted and
/// [`AccessSchedule::from_events`] skips its sort.
fn build_schedules(
    records: &[SessionRecord],
    catalog: &ProgramCatalog,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    strategy: &dyn StrategyFactory,
) -> Result<ScheduleSupply, SimError> {
    if !strategy.needs_schedule() {
        return Ok(ScheduleSupply::none(topo.neighborhood_count()));
    }
    let mut per_nbhd: Vec<Vec<(SimTime, ProgramId)>> = vec![Vec::new(); topo.neighborhood_count()];
    for r in records {
        let nbhd = topo.neighborhood_of_user(r.user)?;
        per_nbhd[nbhd.index()].push((r.start, r.program));
    }
    let costs = schedule_costs(catalog, config, segmenter);
    Ok(ScheduleSupply::Resident(
        cablevod_cache::ResidentSchedules::new(schedules_from_events(per_nbhd, &costs)),
    ))
}

/// Builds the index server for neighborhood `n`. Shared by every driver so
/// shard-local caches are configured exactly like serial ones (including
/// the per-neighborhood placement RNG stream).
fn build_index(
    n: usize,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    schedule: Option<ScheduleWindow>,
    strategy: &dyn StrategyFactory,
) -> Result<IndexServer, SimError> {
    let nominal = config.stream_rate() * config.segment_len();
    let id = NeighborhoodId::new(n as u32);
    let members: Vec<(PeerId, u32)> = topo
        .neighborhood(id)?
        .members()
        .iter()
        .map(|&p| {
            Ok::<_, SimError>((
                p,
                (topo.stb(p)?.capacity().as_bits() / nominal.as_bits()) as u32,
            ))
        })
        .collect::<Result<_, _>>()?;
    // Give each neighborhood's random placement its own stream.
    let placement = match config.placement() {
        PlacementPolicy::Random { seed } => PlacementPolicy::Random {
            seed: seed ^ ((n as u64) << 32),
        },
        other => other,
    };
    let ledger = SlotLedger::new(members, placement);
    let fetch = strategy.fetch_model();
    let strategy = strategy.build(StrategyContext {
        capacity_slots: ledger.total_slots(),
        home: id,
        schedule,
    })?;
    let mut index =
        IndexServer::with_replication(id, strategy, *segmenter, ledger, config.replication());
    if let Some(fetch) = fetch {
        index = index.with_fetch_model(fetch);
    }
    if let Some(fill) = config.fill_override() {
        index.set_fill_policy(fill);
    }
    Ok(index)
}

/// Builds every neighborhood's index server from a schedule supply.
fn build_indexes(
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    schedules: &ScheduleSupply,
    strategy: &dyn StrategyFactory,
) -> Result<Vec<IndexServer>, SimError> {
    (0..topo.neighborhood_count())
        .map(|n| build_index(n, topo, config, segmenter, schedules.window(n)?, strategy))
        .collect()
}

/// The classic serial driver over a fully resident record slice:
/// precomputed contexts, schedules and feed; whole-plant accounting.
fn run_resident<S: TraceSource + ?Sized>(
    records: &[SessionRecord],
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let catalog = source.catalog();

    let mut topo = build_topology(source, config)?;
    let users = UserMap::from_topology(&topo);
    let ctxs = precompute_sessions(records, catalog, &users, &segmenter)?;
    let schedules = build_schedules(records, catalog, &topo, config, &segmenter, strategy)?;
    let feed = build_feed(records, &ctxs, config, &segmenter, strategy);
    let indexes = build_indexes(&topo, config, &segmenter, &schedules, strategy)?;

    let supply = ResidentSupply::new(records, &ctxs, None);
    let provider = feed.as_ref().map(cablevod_cache::PrecomputedFeed::new);
    let nbhd_count = topo.neighborhood_count();
    let plant = FaultingPlant::new(&mut topo, config, 0, nbhd_count);
    let mut driver =
        SessionDriver::new(supply, provider, plant, indexes, 0, config, segmenter, None);
    driver.run()?;
    let (plant, indexes, counters) = driver.into_parts();
    let (_, degradation) = plant.into_parts();

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    Ok(assemble_serial_report(
        &topo,
        &indexes,
        counters,
        days,
        warmup,
        degradation,
    ))
}

/// The chunk runs a **serial** streaming replay merges: one run over all
/// chunks for time-major sources, one run per placement cell for
/// neighborhood-major sources (any group size — each cell run is
/// gidx-ascending and the sequence-number merge restores global order).
fn serial_runs<S: TraceSource + ?Sized>(source: &S) -> Vec<Vec<u32>> {
    match source.neighborhood_layout() {
        Some(layout) => layout.runs.iter().flatten().cloned().collect(),
        None => vec![(0..source.chunk_count() as u32).collect()],
    }
}

/// The serial driver over a chunked source: same event order as
/// [`run_resident`], with records staged chunk by chunk, contexts computed
/// at ingestion, Oracle schedules spilled to a windowed on-disk sidecar
/// (see [`schedule`]), and the feed carried by a single-producer watermark
/// feed (bounded retention — see [`feed`]).
fn run_streaming<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
) -> Result<SimReport, SimError> {
    Ok(run_streaming_observed(source, config, strategy)?.0)
}

/// [`run_streaming`] plus retention observability: also returns the
/// watermark feed's peak live slot count (`None` when the strategy takes
/// no feed), which the idle-neighborhood regression test asserts stays
/// bounded.
fn run_streaming_observed<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
) -> Result<(SimReport, Option<usize>), SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());

    let mut topo = build_topology(source, config)?;
    let nbhd_count = topo.neighborhood_count();
    let schedules = if strategy.needs_schedule() {
        ScheduleSupply::Spilled(spill_from_scan(source, &topo, config, &segmenter)?)
    } else {
        ScheduleSupply::none(nbhd_count)
    };
    let indexes = build_indexes(&topo, config, &segmenter, &schedules, strategy)?;
    let users = UserMap::from_topology(&topo);

    let runs = serial_runs(source);
    let wfeed = feed::wants_feed(strategy)
        .then(|| WatermarkFeed::new(source.record_count(), 1, nbhd_count));
    let provider = wfeed.as_ref().map(|f| SharedFeed::new(f, 0, 0..nbhd_count));
    let supply = StreamSupply::new(
        source,
        runs.iter().map(Vec::as_slice),
        None,
        users,
        config,
        segmenter,
    );
    let plant = FaultingPlant::new(&mut topo, config, 0, nbhd_count);
    let mut driver =
        SessionDriver::new(supply, provider, plant, indexes, 0, config, segmenter, None);
    driver.run()?;
    let (plant, indexes, counters) = driver.into_parts();
    let (_, degradation) = plant.into_parts();
    let peak_feed_slots = wfeed.as_ref().map(WatermarkFeed::peak_live_slots);

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    Ok((
        assemble_serial_report(&topo, &indexes, counters, days, warmup, degradation),
        peak_feed_slots,
    ))
}

/// The per-shard streaming plan: which chunk runs each shard merges, the
/// Oracle schedule supply (when needed), and whether supplies must filter
/// records by neighborhood.
struct StreamPlan {
    /// `shard_runs[n]` — the gidx-sorted chunk runs shard `n` merges.
    shard_runs: Vec<Vec<Vec<u32>>>,
    schedules: ScheduleSupply,
    /// Whether chunks can contain foreign records (false only on the
    /// matched neighborhood-major fast path, where a chunk's records all
    /// belong to its one shard).
    filtered: bool,
}

/// Plans the streaming sharded replay.
///
/// * **Matched neighborhood-major source** (its group size equals the
///   configured neighborhood size): each shard gets exactly its group's
///   chunks straight from the file's chunk index — no pre-pass scan, no
///   filtering, each chunk decoded once for the whole run.
/// * Otherwise one streaming pre-pass builds, per shard, the pruned chunk
///   runs holding at least one of its records (one run per source group,
///   so each run stays gidx-sorted even when the source's grouping
///   disagrees with the configured neighborhood size).
///
/// Oracle schedules ride along on the same scan when the strategy needs
/// them, spilled straight to the windowed on-disk sidecar (see
/// [`schedule`]) — the pre-pass holds no per-record state in memory.
fn shard_plans<S: TraceSource + ?Sized>(
    source: &S,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    strategy: &dyn StrategyFactory,
) -> Result<StreamPlan, SimError> {
    let nbhd_count = topo.neighborhood_count();
    let needs_schedule = strategy.needs_schedule();

    if let Some(layout) = fastpath_layout(source, config, nbhd_count) {
        // Each shard merges its group's cell runs straight from the
        // file's chunk index (a single-index file has one run per group;
        // a multi-index file may have several, one per placement cell).
        let shard_runs = layout.runs.clone();
        let schedules = if needs_schedule {
            ScheduleSupply::Spilled(spill_from_scan(source, topo, config, segmenter)?)
        } else {
            ScheduleSupply::none(nbhd_count)
        };
        return Ok(StreamPlan {
            shard_runs,
            schedules,
            filtered: false,
        });
    }

    let group_lists = serial_runs(source);
    let mut shard_runs: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); group_lists.len()]; nbhd_count];
    let schedules = if needs_schedule {
        // One merged-order scan builds the pruned chunk runs AND spills
        // the schedules (the sidecar needs per-neighborhood time order,
        // which only the merge provides when the source's grouping
        // disagrees with the configured neighborhood size).
        let costs = schedule_costs(source.catalog(), config, segmenter);
        let mut spill = SidecarSpill::create(nbhd_count, costs)?;
        scan_runs(source, &group_lists, true, |g, chunk, rec| {
            let n = topo.neighborhood_of_user(rec.user)?.index();
            if shard_runs[n][g].last() != Some(&chunk) {
                shard_runs[n][g].push(chunk);
            }
            spill.push(n as u32, rec.start, rec.program)
        })?;
        ScheduleSupply::Spilled(spill.into_schedules()?)
    } else {
        let mut buf = Vec::new();
        let mut seen = vec![u32::MAX; nbhd_count];
        for (g, chunks) in group_lists.iter().enumerate() {
            for &chunk in chunks {
                source.read_chunk(chunk as usize, &mut buf)?;
                for r in &buf {
                    let n = topo.neighborhood_of_user(r.user)?.index();
                    if seen[n] != chunk {
                        seen[n] = chunk;
                        shard_runs[n][g].push(chunk);
                    }
                }
            }
        }
        ScheduleSupply::none(nbhd_count)
    };
    for runs in &mut shard_runs {
        runs.retain(|run| !run.is_empty());
    }
    Ok(StreamPlan {
        shard_runs,
        schedules,
        filtered: true,
    })
}
