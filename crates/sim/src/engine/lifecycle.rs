//! The **one** session-lifecycle implementation.
//!
//! [`SessionDriver`] owns the discrete-event loop every engine entry
//! point runs: interleave the next trace record with the continuation
//! heap in time order, start sessions (viewer slot accounting, feed sync,
//! strategy update, first segment), and resolve segment requests against
//! the cache and the plant. It is generic over three seams, and those
//! seams — not copies of this loop — are what distinguish the four entry
//! drivers:
//!
//! * [`SegmentPlant`] — whose bytes get accounted: the whole
//!   [`Topology`] (serial) or one neighborhood's
//!   [`ShardPlant`](super::shard::ShardPlant);
//! * [`FeedProvider`] — how the global popularity feed is published and
//!   consumed: a precomputed carrier (resident) or the shared watermark
//!   carrier (streaming);
//! * [`RecordSupply`] — where sessions come from: a resident slice or a
//!   merged chunk stream (see [`super::stream`]).
//!
//! The loop can run to completion ([`SessionDriver::run`]) or as a
//! resumable cooperative task ([`SessionDriver::step`]), which is how the
//! streaming sharded engine multiplexes many shards onto few workers and
//! parks the ones waiting on the feed frontier.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cablevod_cache::{FeedEvent, FeedProvider, IndexServer, Resolution};
use cablevod_hfc::ids::{NeighborhoodId, PeerId, SegmentId, UserId};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::stb::StbStore;
use cablevod_hfc::topology::Topology;
use cablevod_hfc::units::{SimDuration, SimTime};
use cablevod_trace::catalog::ProgramCatalog;
use cablevod_trace::record::SessionRecord;

use crate::config::SimConfig;
use crate::error::SimError;

use super::fault::{AdmissionControl, Verdict};

/// Error reason used when a shard bails out because a sibling failed; the
/// merge prefers the sibling's real error over this sentinel.
pub(super) const ABORTED: &str = "aborted after a failure in another shard";

/// Sentinel segment index marking a retry event on the continuation heap
/// (a refused session's backoff re-attempt, not a segment request). Real
/// segment indices never reach it — a program would need 2^16 segments —
/// and it sorts after every real segment at the same `(time, gidx)`, in
/// both the serial and the sharded heap, so retry ordering is
/// deterministic across drivers.
pub(super) const RETRY_SEG: u16 = u16::MAX;

/// The immutable user → plant mapping sessions are contextualized
/// against: who lives where. An owned snapshot of
/// [`Topology::peer_neighborhoods`] (shared via `Arc`, so clones are
/// cheap), which lets supplies resolve users while a serial driver holds
/// the topology itself mutably as its plant.
#[derive(Debug, Clone)]
pub(super) struct UserMap {
    nbhd_of: Arc<[NeighborhoodId]>,
}

impl UserMap {
    pub(super) fn from_topology(topo: &Topology) -> Self {
        UserMap {
            nbhd_of: topo.peer_neighborhoods().into(),
        }
    }

    /// The neighborhood serving `user` (mirrors
    /// [`Topology::neighborhood_of_user`]).
    pub(super) fn neighborhood_of_user(&self, user: UserId) -> Result<NeighborhoodId, SimError> {
        self.nbhd_of
            .get(user.index())
            .copied()
            .ok_or_else(|| SimError::from(cablevod_hfc::error::HfcError::UnknownUser { user }))
    }

    /// The home peer of `user` (mirrors [`Topology::home_peer`]: users and
    /// peers are in one-to-one correspondence).
    fn home_peer(&self, user: UserId) -> Result<PeerId, SimError> {
        if user.index() < self.nbhd_of.len() {
            Ok(PeerId::new(user.value()))
        } else {
            Err(SimError::from(cablevod_hfc::error::HfcError::UnknownUser {
                user,
            }))
        }
    }
}

/// Everything the hot loop needs about one session, precomputed (resident
/// path) or computed at ingestion (streaming paths) so the event loop
/// never re-queries the catalog or the topology during event processing.
#[derive(Debug, Clone, Copy)]
pub(super) struct SessionCtx {
    /// Dense neighborhood index of the session's user.
    pub nbhd: u32,
    /// The viewer's own set-top box.
    pub home: PeerId,
    /// Full program length from the catalog.
    pub length: SimDuration,
    /// Seconds actually streamed (duration clamped to the post-seek tail).
    pub watched: SimDuration,
    /// Clamped seek offset in seconds.
    pub offset: u64,
    /// Absolute index of the first requested segment.
    pub first_seg: u16,
}

/// Computes one session's context (pure function of record, catalog and
/// user map — every engine path shares it, so contexts are identical no
/// matter when they are computed).
pub(super) fn session_ctx(
    rec: &SessionRecord,
    catalog: &ProgramCatalog,
    users: &UserMap,
    seg_len: u64,
) -> Result<SessionCtx, SimError> {
    let length = catalog.length(rec.program).ok_or(SimError::Trace(
        cablevod_trace::TraceError::DanglingProgram {
            program: rec.program,
        },
    ))?;
    let nbhd = users.neighborhood_of_user(rec.user)?;
    let home = users.home_peer(rec.user)?;
    let offset = rec.offset.min(length).as_secs();
    Ok(SessionCtx {
        nbhd: nbhd.index() as u32,
        home,
        length,
        watched: rec.watched(length),
        offset,
        first_seg: (offset / seg_len) as u16,
    })
}

/// The feed event an access publishes (pure function of the record — every
/// feed carrier emits exactly this).
pub(super) fn feed_event(
    rec: &SessionRecord,
    ctx: &SessionCtx,
    config: &SimConfig,
    segmenter: &Segmenter,
) -> FeedEvent {
    FeedEvent {
        time: rec.start,
        neighborhood: NeighborhoodId::new(ctx.nbhd),
        program: rec.program,
        cost: u32::from(segmenter.segment_count(ctx.length)) * u32::from(config.replication()),
    }
}

/// Mutable per-run tallies.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct EngineCounters {
    pub sessions: u64,
    pub segment_requests: u64,
    pub viewer_overcommits: u64,
}

impl EngineCounters {
    pub(super) fn absorb(&mut self, other: EngineCounters) {
        self.sessions += other.sessions;
        self.segment_requests += other.segment_requests;
        self.viewer_overcommits += other.viewer_overcommits;
    }
}

/// The slice of the plant one event touches. The serial drivers implement
/// it on the whole [`Topology`]; the sharded drivers on a per-neighborhood
/// [`ShardPlant`](super::shard::ShardPlant). Keeping the lifecycle generic
/// over this trait guarantees every path accounts bytes identically.
pub(super) trait SegmentPlant {
    /// The set-top boxes requests resolve against.
    fn stbs(&mut self) -> &mut dyn StbStore;

    /// A cache miss: central server -> fiber -> headend rebroadcast
    /// (Fig 4).
    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError>;

    /// The broadcast every segment makes over the coax regardless of who
    /// serves it (§VI-B).
    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError>;

    /// The plant's admission control, when a fault plan or enforcing
    /// admission is active. The default — a bare plant — exposes none,
    /// and the lifecycle takes its original (pre-fault, byte-identical)
    /// path. Overridden by [`FaultingPlant`](super::fault::FaultingPlant),
    /// which every entry driver wraps its plant in.
    fn admission(&mut self) -> Option<&mut AdmissionControl> {
        None
    }
}

impl<P: SegmentPlant + ?Sized> SegmentPlant for &mut P {
    fn stbs(&mut self) -> &mut dyn StbStore {
        (**self).stbs()
    }

    fn admission(&mut self) -> Option<&mut AdmissionControl> {
        (**self).admission()
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        (**self).record_miss(nbhd, start, end, size)
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        (**self).record_broadcast(nbhd, start, end, size)
    }
}

impl SegmentPlant for Topology {
    fn stbs(&mut self) -> &mut dyn StbStore {
        self
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.server_mut().record_service(start, end, size);
        self.neighborhood_mut(nbhd)?
            .fiber_mut()
            .record(start, end, size);
        Ok(())
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.neighborhood_mut(nbhd)?
            .coax_mut()
            .record_broadcast(start, end, size);
        Ok(())
    }
}

/// One staged session: its global record index, the record, and the
/// precomputed context.
#[derive(Debug, Clone, Copy)]
pub(super) struct PendingSession {
    pub gidx: u64,
    pub rec: SessionRecord,
    pub ctx: SessionCtx,
}

/// Where a driver's sessions come from, in the order it must start them
/// (ascending global index). Supplies own all staging concerns: chunk
/// decoding, context computation, neighborhood filtering, and — via the
/// [`FeedProvider`] they are handed — feed publication and watermark
/// advancement for the records they accept.
pub(super) trait RecordSupply<F: FeedProvider> {
    /// Stages (if necessary) and describes the next session as
    /// `(start time, global index)`; `None` when the supply is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates source read and context computation failures.
    fn peek(&mut self, feed: &mut Option<F>) -> Result<Option<(SimTime, u64)>, SimError>;

    /// Consumes the session [`peek`](RecordSupply::peek) described.
    ///
    /// # Panics
    ///
    /// May panic if nothing is staged.
    fn take(&mut self) -> PendingSession;
}

/// One slab entry: the session plus its admission bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ActiveSlot {
    rec: SessionRecord,
    ctx: SessionCtx,
    /// Backoff retries this session has spent (enforcing admission).
    retries: u8,
    /// Whether a counting-mode would-interrupt was already tallied, so
    /// a session streaming through an outage is counted once.
    outage_noted: bool,
}

/// Slab of in-flight sessions: the driver retains only records whose
/// continuation events are still in the heap, keyed by a reusable slot id
/// carried alongside the heap entry (the slot never participates in event
/// ordering — heap keys stay `(time, global index, segment)`).
#[derive(Debug, Default)]
pub(super) struct ActiveSessions {
    slots: Vec<ActiveSlot>,
    free: Vec<u32>,
}

impl ActiveSessions {
    pub(super) fn insert(&mut self, rec: SessionRecord, ctx: SessionCtx) -> u32 {
        let entry = ActiveSlot {
            rec,
            ctx,
            retries: 0,
            outage_noted: false,
        };
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = entry;
            slot
        } else {
            self.slots.push(entry);
            (self.slots.len() - 1) as u32
        }
    }

    pub(super) fn get(&self, slot: u32) -> (SessionRecord, SessionCtx) {
        let entry = &self.slots[slot as usize];
        (entry.rec, entry.ctx)
    }

    pub(super) fn remove(&mut self, slot: u32) {
        self.free.push(slot);
    }

    /// Retries this session has spent so far.
    fn retries(&self, slot: u32) -> u8 {
        self.slots[slot as usize].retries
    }

    fn bump_retries(&mut self, slot: u32) {
        self.slots[slot as usize].retries += 1;
    }

    /// Shifts the session's start to its admitted-after-retry time, so
    /// segment scheduling runs from when playback actually began.
    fn shift_start(&mut self, slot: u32, start: SimTime) {
        self.slots[slot as usize].rec.start = start;
    }

    /// Marks the session's would-interrupt as tallied; `true` the first
    /// time.
    fn note_outage(&mut self, slot: u32) -> bool {
        let entry = &mut self.slots[slot as usize];
        !std::mem::replace(&mut entry.outage_noted, true)
    }

    /// Slots ever allocated (high-water mark of concurrent sessions).
    #[cfg(test)]
    pub(super) fn allocated(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently free for reuse.
    #[cfg(test)]
    pub(super) fn free_count(&self) -> usize {
        self.free.len()
    }
}

/// What one [`SessionDriver::step`] call ended with.
pub(super) enum Step {
    /// The driver processed every one of its events.
    Done,
    /// The driver must wait for the feed frontier; `progressed` reports
    /// whether any events were processed before blocking (workers yield
    /// the CPU only when a full round over their tasks made no progress).
    Blocked { progressed: bool },
    /// Every event at or before the caller's horizon has been processed;
    /// the driver is parked at the edge of simulated "now" (online
    /// stepping — see [`super::online`]). Unlike [`Step::Done`] the feed
    /// is **not** finished: more records may still be submitted.
    /// `progressed` reports whether any events were processed.
    Horizon { progressed: bool },
}

/// The single discrete-event loop (see the module docs). One instance
/// drives one plant: the whole topology for serial runs, one
/// neighborhood's shard for sharded runs.
pub(super) struct SessionDriver<'a, P, F, R> {
    supply: R,
    feed: Option<F>,
    plant: P,
    /// The index servers this driver routes events to;
    /// `indexes[ctx.nbhd - index_base]`. Serial drivers hold every
    /// neighborhood (base 0); shard drivers hold exactly their own.
    indexes: Vec<IndexServer>,
    index_base: u32,
    active: ActiveSessions,
    /// Continuation events: (segment start, global record index, segment
    /// index, active-session slot). The slot is payload, not key — ties on
    /// it are impossible because a session has at most one outstanding
    /// continuation.
    heap: BinaryHeap<Reverse<(SimTime, u32, u16, u32)>>,
    counters: EngineCounters,
    config: &'a SimConfig,
    segmenter: Segmenter,
    /// Set when any sibling shard failed; checked at every step entry so
    /// parked shards unblock into an orderly bail-out.
    abort: Option<&'a AtomicBool>,
    /// When `Some(stride)`, this driver periodically syncs **every**
    /// index it holds against the feed, so neighborhoods between (or
    /// without) sessions keep their consumption cursors — and with them
    /// the feed's reclamation floor — moving. The stride comes from the
    /// carrier itself (its reclamation granule — see
    /// [`FeedProvider::idle_sync_stride`]), so the sweep cadence and the
    /// reclaim cadence cannot drift apart. Only the serial streaming
    /// driver gets `Some`.
    idle_sync: Option<u64>,
    /// Next global record index at which to run an idle sweep.
    next_idle_sync: u64,
}

impl<'a, P, F, R> SessionDriver<'a, P, F, R>
where
    P: SegmentPlant,
    F: FeedProvider,
    R: RecordSupply<F>,
{
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        supply: R,
        feed: Option<F>,
        plant: P,
        indexes: Vec<IndexServer>,
        index_base: u32,
        config: &'a SimConfig,
        segmenter: Segmenter,
        abort: Option<&'a AtomicBool>,
    ) -> Self {
        let idle_sync = feed
            .as_ref()
            .and_then(FeedProvider::idle_sync_stride)
            .filter(|_| indexes.len() > 1);
        SessionDriver {
            supply,
            feed,
            plant,
            indexes,
            index_base,
            active: ActiveSessions::default(),
            heap: BinaryHeap::new(),
            counters: EngineCounters::default(),
            config,
            segmenter,
            abort,
            idle_sync,
            next_idle_sync: idle_sync.unwrap_or(0),
        }
    }

    /// Processes events until the driver completes or must wait for the
    /// feed frontier.
    pub(super) fn step(&mut self) -> Result<Step, SimError> {
        self.step_until(None)
    }

    /// [`step`](SessionDriver::step) bounded by a horizon: processes every
    /// event whose time is at or before `horizon`, then parks with
    /// [`Step::Horizon`] instead of finishing. With `horizon = None` the
    /// bound is vacuous and the behavior is exactly [`step`] — every
    /// offline driver goes through this code path unchanged. A bounded
    /// driver whose supply and heap are both empty also parks (its live
    /// supply may be handed more sessions later), so only an unbounded
    /// call can ever finish the feed.
    pub(super) fn step_until(&mut self, horizon: Option<SimTime>) -> Result<Step, SimError> {
        let mut progressed = false;
        loop {
            if let Some(abort) = self.abort {
                if abort.load(Ordering::Relaxed) {
                    return Err(SimError::Config {
                        reason: ABORTED.into(),
                    });
                }
            }
            let staged = self.supply.peek(&mut self.feed)?;
            let take_record = match (staged, self.heap.peek()) {
                (None, None) => {
                    if horizon.is_some() {
                        return Ok(Step::Horizon { progressed });
                    }
                    if let Some(feed) = self.feed.as_mut() {
                        feed.finish();
                    }
                    return Ok(Step::Done);
                }
                (Some((start, _)), None) => {
                    if horizon.is_some_and(|h| start > h) {
                        return Ok(Step::Horizon { progressed });
                    }
                    true
                }
                (None, Some(&Reverse((t, _, _, _)))) => {
                    if horizon.is_some_and(|h| t > h) {
                        return Ok(Step::Horizon { progressed });
                    }
                    false
                }
                (Some((start, _)), Some(&Reverse((t, _, _, _)))) => {
                    if horizon.is_some_and(|h| start.min(t) > h) {
                        return Ok(Step::Horizon { progressed });
                    }
                    start <= t
                }
            };

            if take_record {
                let (start, gidx) = staged.expect("record chosen");
                if let Some(feed) = self.feed.as_mut() {
                    if !feed.ready(gidx) {
                        return Ok(Step::Blocked { progressed });
                    }
                }
                if let Some(stride) = self.idle_sync {
                    if gidx >= self.next_idle_sync {
                        // Idle sweep: sync every neighborhood — not just
                        // the one starting a session — against the
                        // published prefix. A neighborhood with no record
                        // before `gidx` would otherwise hold its
                        // consumption cursor (and the feed's reclamation
                        // floor) at its last session, or at zero forever
                        // if it has none; an eager sync consumes exactly
                        // the prefix its own next session would consume
                        // first anyway, so results are bit-identical (the
                        // streaming-parity property tests pin this) while
                        // live feed slots stay O(stride), not O(trace).
                        self.next_idle_sync = gidx + stride;
                        let feed = self.feed.as_mut().expect("idle sync implies a feed");
                        for index in &mut self.indexes {
                            feed.sync(index, start, gidx);
                        }
                    }
                }
                let session = self.supply.take();
                self.start_session(&session)?;
            } else {
                let Reverse((at, gidx, seg_idx, slot)) =
                    self.heap.pop().expect("peeked entry exists");
                if seg_idx == RETRY_SEG {
                    self.retry_session(at, gidx, slot)?;
                } else {
                    let (rec, ctx) = self.active.get(slot);
                    if self.interrupt(ctx.nbhd, at, slot) {
                        self.active.remove(slot);
                    } else {
                        let cont = self.process_segment(&rec, &ctx, seg_idx)?;
                        match cont {
                            Some((t, seg)) => self.heap.push(Reverse((t, gidx, seg, slot))),
                            None => self.active.remove(slot),
                        }
                    }
                }
            }
            progressed = true;
        }
    }

    /// Runs to completion. Only valid for drivers whose feed provider is
    /// always ready (everything except the streaming sharded path, which
    /// steps cooperatively instead).
    pub(super) fn run(&mut self) -> Result<(), SimError> {
        loop {
            match self.step()? {
                Step::Done => return Ok(()),
                Step::Blocked { .. } => {
                    debug_assert!(false, "a non-sharded feed provider never blocks");
                    std::thread::yield_now();
                }
                Step::Horizon { .. } => unreachable!("unbounded steps never park on a horizon"),
            }
        }
    }

    /// The index servers this driver routes events to, in neighborhood
    /// order from `index_base` (online lookups read placement through
    /// these between steps).
    pub(super) fn indexes(&self) -> &[IndexServer] {
        &self.indexes
    }

    /// Handles one session start: admission, viewer slot accounting, feed
    /// sync, strategy update, and the first segment request.
    fn start_session(&mut self, session: &PendingSession) -> Result<(), SimError> {
        let PendingSession { gidx, rec, ctx } = session;
        self.counters.sessions += 1;
        let verdict = match self.plant.admission() {
            Some(ctl) => ctl.try_admit(ctx.nbhd, rec.start, rec.start + ctx.watched, 0),
            None => Verdict::Admit,
        };
        match verdict {
            Verdict::Admit => self.admit_session(*gidx, rec, ctx),
            Verdict::Retry { at } => {
                // The request itself still drives the feed and the
                // strategy's popularity at its original time — only
                // playback waits for the backoff.
                self.publish_access(*gidx, rec, ctx)?;
                let slot = self.active.insert(*rec, *ctx);
                self.active.bump_retries(slot);
                self.heap.push(Reverse((at, *gidx as u32, RETRY_SEG, slot)));
                Ok(())
            }
            Verdict::Blocked => self.publish_access(*gidx, rec, ctx),
        }
    }

    /// The admitted-session path: the whole pre-fault lifecycle, byte
    /// for byte.
    fn admit_session(
        &mut self,
        gidx: u64,
        rec: &SessionRecord,
        ctx: &SessionCtx,
    ) -> Result<(), SimError> {
        // The viewer's own playback occupies one of its slots for the
        // whole session; playback is never blocked, overcommit is counted
        // (DESIGN.md §5).
        let stb = self.plant.stbs().stb_mut(ctx.home)?;
        stb.start_stream_unchecked(rec.start, rec.start + ctx.watched);
        if stb.is_overcommitted(rec.start) {
            self.counters.viewer_overcommits += 1;
        }

        self.publish_access(gidx, rec, ctx)?;

        if ctx.watched.as_secs() > 0 {
            if let Some((t, seg)) = self.process_segment(rec, ctx, ctx.first_seg)? {
                let slot = self.active.insert(*rec, *ctx);
                self.heap.push(Reverse((t, gidx as u32, seg, slot)));
            }
        }
        Ok(())
    }

    /// Publishes one access: feed consumption up to the record and the
    /// strategy's popularity update, at the record's own time. Fired
    /// exactly once per trace record — whether, and whenever, the
    /// session is admitted — so popularity stays request-driven and
    /// independent of the admission outcome.
    fn publish_access(
        &mut self,
        gidx: u64,
        rec: &SessionRecord,
        ctx: &SessionCtx,
    ) -> Result<(), SimError> {
        let index_at = (ctx.nbhd - self.index_base) as usize;
        if let Some(feed) = self.feed.as_mut() {
            // Events up to and including this record are published (see
            // the module docs on feed exactness); the provider bounds
            // consumption accordingly.
            feed.sync(&mut self.indexes[index_at], rec.start, gidx);
        }
        self.indexes[index_at].on_program_access(
            rec.program,
            ctx.length,
            rec.start,
            self.plant.stbs(),
        )?;
        Ok(())
    }

    /// Handles one backoff retry: re-attempts admission with the
    /// session's spent retries; on success, playback starts now (the
    /// session's start shifts to the admitted time, the watched program
    /// span is unchanged).
    fn retry_session(&mut self, at: SimTime, gidx: u32, slot: u32) -> Result<(), SimError> {
        let (_, ctx) = self.active.get(slot);
        let retries = self.active.retries(slot);
        let ctl = self
            .plant
            .admission()
            .expect("retry events exist only under admission control");
        match ctl.try_admit(ctx.nbhd, at, at + ctx.watched, retries) {
            Verdict::Admit => {
                self.active.shift_start(slot, at);
                let (rec, ctx) = self.active.get(slot);
                let stb = self.plant.stbs().stb_mut(ctx.home)?;
                stb.start_stream_unchecked(rec.start, rec.start + ctx.watched);
                if stb.is_overcommitted(rec.start) {
                    self.counters.viewer_overcommits += 1;
                }
                // No publish_access here: the request already drove the
                // feed and popularity at its original time.
                let cont = if ctx.watched.as_secs() > 0 {
                    self.process_segment(&rec, &ctx, ctx.first_seg)?
                } else {
                    None
                };
                match cont {
                    Some((t, seg)) => self.heap.push(Reverse((t, gidx, seg, slot))),
                    None => self.active.remove(slot),
                }
                Ok(())
            }
            Verdict::Retry { at } => {
                self.active.bump_retries(slot);
                self.heap.push(Reverse((at, gidx, RETRY_SEG, slot)));
                Ok(())
            }
            Verdict::Blocked => {
                self.active.remove(slot);
                Ok(())
            }
        }
    }

    /// Degraded-plant check for one continuation event. Under enforcing
    /// admission an active outage drops the session (returns `true`);
    /// under counting it tallies the would-interrupt once per session
    /// and lets playback continue. Interrupted sessions keep their
    /// viewer-STB slot and channel occupancy until their nominal end —
    /// both are pruned lazily by end time, a deliberate simplification
    /// documented in the crate's fault model.
    fn interrupt(&mut self, nbhd: u32, at: SimTime, slot: u32) -> bool {
        let Some(ctl) = self.plant.admission() else {
            return false;
        };
        if !ctl.outage_now(nbhd, at) {
            return false;
        }
        if ctl.enforcing() {
            ctl.tally_interrupt(nbhd);
            true
        } else {
            if self.active.note_outage(slot) {
                ctl.tally_interrupt(nbhd);
            }
            false
        }
    }

    /// Resolves one segment request and returns the session's next one.
    ///
    /// `seg_idx` is the *absolute* segment index within the program;
    /// sessions that seek (`offset > 0`) start mid-program, so the
    /// playback span is `[offset, offset + watched_total)` in program
    /// positions.
    fn process_segment(
        &mut self,
        rec: &SessionRecord,
        ctx: &SessionCtx,
        seg_idx: u16,
    ) -> Result<Option<(SimTime, u16)>, SimError> {
        let seg_len = self.segmenter.segment_len().as_secs();
        let span_end = ctx.offset + ctx.watched.as_secs();
        let k = u64::from(seg_idx);
        // Overlap of this segment's positions with the playback span.
        let overlap_start = ctx.offset.max(k * seg_len);
        let overlap_end = span_end.min((k + 1) * seg_len);
        debug_assert!(overlap_start < overlap_end, "segment outside playback span");
        let watched = overlap_end - overlap_start;
        let start = rec.start + SimDuration::from_secs(overlap_start - ctx.offset);
        let end = start + SimDuration::from_secs(watched);
        let size = self.config.stream_rate() * SimDuration::from_secs(watched);
        let segment = SegmentId::new(rec.program, seg_idx);
        let index_at = (ctx.nbhd - self.index_base) as usize;

        self.counters.segment_requests += 1;
        let resolution = self.indexes[index_at].resolve_segment(
            segment,
            rec.start,
            start,
            end,
            self.plant.stbs(),
        )?;
        let nbhd = self.indexes[index_at].home();
        if let Resolution::Miss(_) = resolution {
            // Fig 4: central server -> fiber -> headend rebroadcast.
            self.plant.record_miss(nbhd, start, end, size)?;
        }
        // Broadcast medium: the segment crosses the coax either way
        // (§VI-B).
        self.plant.record_broadcast(nbhd, start, end, size)?;

        let next_pos = (k + 1) * seg_len;
        Ok((next_pos < span_end).then(|| {
            (
                rec.start + SimDuration::from_secs(next_pos - ctx.offset),
                seg_idx + 1,
            )
        }))
    }

    /// Decomposes the driver after a completed run.
    pub(super) fn into_parts(self) -> (P, Vec<IndexServer>, EngineCounters) {
        (self.plant, self.indexes, self.counters)
    }
}
