//! Schedule glue: constructing the right
//! [`ScheduleSource`] for each entry
//! driver — the Oracle-side twin of [`super::feed`].
//!
//! The lifecycle core never touches a concrete schedule carrier — index
//! servers are built from per-neighborhood
//! [`ScheduleWindow`]s obtained through the
//! [`ScheduleSource`] seam. This module is the engine-side selection
//! logic:
//!
//! * **resident runs** build the classic in-memory
//!   [`AccessSchedule`](cablevod_cache::AccessSchedule)s in one pass over
//!   the record slice and wrap them in
//!   [`ResidentSchedules`] — windows are zero-copy cursor pairs, the
//!   PR-1 hot path untouched;
//! * **streaming runs** spill the schedules to a temporary on-disk
//!   **schedule sidecar** ([`cablevod_trace::schedule`]) during the same
//!   single scan that used to materialize them in RAM
//!   ([`SidecarSpill`]), then replay them through windowed readers
//!   ([`SpilledSchedules`]) whose resident state is bounded by the
//!   look-ahead span plus one sidecar chunk — so a streaming Oracle
//!   run's peak memory is O(chunk + look-ahead window + active
//!   sessions), not O(trace).
//!
//! The spill file lives in the system temp directory and is removed when
//! the last window over it is dropped (the readers hold it through an
//! `Arc`'d RAII guard); a run that fails mid-scan cleans up the partial
//! file the same way.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cablevod_cache::{
    CacheError, ResidentSchedules, ScheduleReader, ScheduleSource, ScheduleWindow,
};
use cablevod_hfc::ids::{NeighborhoodId, ProgramId};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::topology::Topology;
use cablevod_hfc::units::SimTime;
use cablevod_trace::record::SessionRecord;
use cablevod_trace::schedule::{
    events_per_chunk, ScheduleSidecarReader, ScheduleSidecarWriter, DEFAULT_EVENTS_PER_CHUNK,
};
use cablevod_trace::source::TraceSource;

use super::stream::ChunkRun;
use crate::config::SimConfig;
use crate::error::SimError;

/// Budget for the sidecar writer's per-neighborhood in-progress chunk
/// buffers; [`events_per_chunk`] shrinks chunks below the default when a
/// plant has enough neighborhoods to matter.
const SPILL_BUFFER_BUDGET: u64 = 64 << 20;

/// Distinguishes concurrent spills within one process (parallel tests,
/// sweeps).
static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The per-run schedule supply every driver builds its index servers
/// from: prebuilt resident schedules, or the windowed on-disk spill.
pub(super) enum ScheduleSupply {
    /// Fully resident per-neighborhood schedules (or none at all).
    Resident(ResidentSchedules),
    /// Schedules spilled to a sidecar file, replayed through bounded
    /// windows.
    Spilled(SpilledSchedules),
}

impl ScheduleSupply {
    /// A supply with no schedule for any of `neighborhoods` — what every
    /// strategy that never consults a schedule runs with.
    pub(super) fn none(neighborhoods: usize) -> Self {
        ScheduleSupply::Resident(ResidentSchedules::none(neighborhoods))
    }

    /// The windowed schedule for dense neighborhood index `n`.
    pub(super) fn window(&self, n: usize) -> Result<Option<ScheduleWindow>, SimError> {
        let id = NeighborhoodId::new(n as u32);
        match self {
            ScheduleSupply::Resident(s) => s.window(id),
            ScheduleSupply::Spilled(s) => s.window(id),
        }
        .map_err(SimError::from)
    }
}

/// Removes the spill file when dropped — the write path's failure cleanup
/// and the read path's end-of-life are the same mechanism.
#[derive(Debug)]
struct SpillFile {
    path: PathBuf,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An in-progress schedule spill: the sidecar writer plus the RAII guard
/// for its temp file. Push events in per-neighborhood time order (the
/// scan helpers below guarantee it), then
/// [`into_schedules`](SidecarSpill::into_schedules).
pub(super) struct SidecarSpill {
    // Field order matters: the writer's buffered file handle must drop
    // before the guard unlinks the path.
    writer: ScheduleSidecarWriter,
    file: SpillFile,
}

impl SidecarSpill {
    /// Creates a spill for `neighborhoods` neighborhoods charging
    /// `costs[p]` slots per program.
    pub(super) fn create(neighborhoods: usize, costs: Vec<u32>) -> Result<Self, SimError> {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "cablevod_oracle_spill_{}_{}.cvsc",
            std::process::id(),
            SPILL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let chunk = events_per_chunk(
            neighborhoods as u32,
            DEFAULT_EVENTS_PER_CHUNK,
            SPILL_BUFFER_BUDGET,
        );
        let writer = ScheduleSidecarWriter::create(&path, neighborhoods as u32, &costs, chunk)?;
        Ok(SidecarSpill {
            writer,
            file: SpillFile { path },
        })
    }

    /// Appends one future-access event.
    pub(super) fn push(
        &mut self,
        neighborhood: u32,
        time: SimTime,
        program: ProgramId,
    ) -> Result<(), SimError> {
        Ok(self.writer.push(neighborhood, time, program)?)
    }

    /// Completes the sidecar and reopens it for windowed reading. The
    /// windows' cost table is the one round-tripped through (and
    /// validated against) the file — the file is the single source of
    /// truth once the spill completes.
    pub(super) fn into_schedules(self) -> Result<SpilledSchedules, SimError> {
        self.writer.finish()?;
        let reader = ScheduleSidecarReader::open(&self.file.path)?;
        let costs: Arc<[u32]> = reader.costs().into();
        Ok(SpilledSchedules {
            shared: Arc::new(SidecarShared {
                reader,
                _file: self.file,
            }),
            costs,
        })
    }
}

/// The sidecar reader plus the temp-file guard, shared by every window
/// of the run (and across shard workers — reads are positioned).
#[derive(Debug)]
struct SidecarShared {
    reader: ScheduleSidecarReader,
    _file: SpillFile,
}

/// [`ScheduleSource`] over a completed schedule spill: each window is a
/// sequential chunk cursor over its neighborhood's time-ordered sidecar
/// chunks.
#[derive(Debug, Clone)]
pub(super) struct SpilledSchedules {
    shared: Arc<SidecarShared>,
    costs: Arc<[u32]>,
}

impl SpilledSchedules {
    /// Cumulative sidecar decode counters (retention/accounting tests).
    #[cfg(test)]
    pub(super) fn decode_stats(&self) -> cablevod_trace::source::DecodeStats {
        self.shared.reader.decode_stats()
    }

    /// The spill file's location (lifecycle tests assert cleanup).
    #[cfg(test)]
    pub(super) fn spill_path(&self) -> PathBuf {
        self.shared._file.path.clone()
    }
}

impl ScheduleSource for SpilledSchedules {
    fn window(&self, nbhd: NeighborhoodId) -> Result<Option<ScheduleWindow>, CacheError> {
        Ok(Some(ScheduleWindow::streaming(
            Box::new(SidecarWindowReader {
                shared: Arc::clone(&self.shared),
                neighborhood: nbhd.index(),
                next: 0,
            }),
            Arc::clone(&self.costs),
        )))
    }
}

/// [`ScheduleReader`] over one neighborhood's sidecar chunks: one batch
/// per chunk, fetched with a positioned read when the window's leading
/// edge needs it.
#[derive(Debug)]
struct SidecarWindowReader {
    shared: Arc<SidecarShared>,
    neighborhood: usize,
    next: usize,
}

impl ScheduleReader for SidecarWindowReader {
    fn next_batch(&mut self, out: &mut Vec<(SimTime, ProgramId)>) -> Result<bool, CacheError> {
        let chunks = self.shared.reader.chunks_of(self.neighborhood);
        let Some(&chunk) = chunks.get(self.next) else {
            out.clear();
            return Ok(false);
        };
        self.next += 1;
        self.shared
            .reader
            .read_chunk(chunk as usize, out)
            .map_err(|e| CacheError::Schedule {
                reason: e.to_string(),
            })?;
        Ok(true)
    }
}

/// Visits every record of `runs` (gidx-ascending chunk lists) exactly
/// once as `(run index, chunk id, record)`, decoding each chunk once
/// through the source's counted chunk API. With `merge` the runs are
/// interleaved by global sequence number — global time order, required
/// whenever one neighborhood's records span several runs (mismatched
/// neighborhood-major sources). Without it runs are scanned back to
/// back, which is already per-neighborhood time order when each run is
/// one neighborhood's chunk list (matched sources) or there is a single
/// run (time-major sources).
pub(super) fn scan_runs<S: TraceSource + ?Sized>(
    source: &S,
    runs: &[Vec<u32>],
    merge: bool,
    mut visit: impl FnMut(usize, u32, &SessionRecord) -> Result<(), SimError>,
) -> Result<(), SimError> {
    let mut cursors: Vec<ChunkRun<'_, S>> = runs
        .iter()
        .map(|chunks| ChunkRun::new(source, chunks))
        .collect();
    if merge && cursors.len() > 1 {
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, run) in cursors.iter_mut().enumerate() {
                if let Some((gidx, _)) = run.head()? {
                    if best.is_none_or(|(b, _)| gidx < b) {
                        best = Some((gidx, i));
                    }
                }
            }
            let Some((_, i)) = best else { return Ok(()) };
            let (_, rec) = cursors[i].head()?.expect("head just observed");
            let chunk = cursors[i].head_chunk();
            cursors[i].pop_head();
            visit(i, chunk, &rec)?;
        }
    }
    for (i, run) in cursors.iter_mut().enumerate() {
        while let Some((_, rec)) = run.head()? {
            let chunk = run.head_chunk();
            run.pop_head();
            visit(i, chunk, &rec)?;
        }
    }
    Ok(())
}

/// Spills the Oracle schedules of every neighborhood with **one**
/// streaming scan over the source — the scan the resident pre-pass used
/// to fill RAM with. Decode work goes through the source's counted chunk
/// API, so schedule pre-passes show up in
/// [`TraceSource::decode_stats`] accounting exactly like replay work.
pub(super) fn spill_from_scan<S: TraceSource + ?Sized>(
    source: &S,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
) -> Result<SpilledSchedules, SimError> {
    let costs = super::schedule_costs(source.catalog(), config, segmenter);
    let mut spill = SidecarSpill::create(topo.neighborhood_count(), costs)?;
    let runs = super::serial_runs(source);
    // A matched neighborhood-major source with one run per group is
    // already per-neighborhood time-ordered run by run; everything else —
    // including matched multi-index sources whose groups span several
    // placement cells, whose runs interleave in time — merges to global
    // order.
    let matched = super::fastpath_layout(source, config, topo.neighborhood_count())
        .is_some_and(|layout| layout.single_run_per_group());
    scan_runs(source, &runs, !matched, |_, _, rec| {
        let nbhd = topo.neighborhood_of_user(rec.user)?;
        spill.push(nbhd.index() as u32, rec.start, rec.program)
    })?;
    spill.into_schedules()
}
