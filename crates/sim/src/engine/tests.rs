//! Engine unit tests: physics invariants of the serial reference path,
//! equivalence of the sharded and streaming drivers, and lifecycle
//! internals (the active-session slab).

use super::lifecycle::ActiveSessions;
use super::*;
use cablevod_cache::StrategySpec;
use cablevod_hfc::ids::{ProgramId, UserId};
use cablevod_hfc::units::{BitRate, DataSize, SimDuration};
use cablevod_trace::record::Trace;
use cablevod_trace::source::ChunkedTrace;
use cablevod_trace::synth::{generate, SynthConfig};

fn small_trace() -> Trace {
    generate(&SynthConfig {
        users: 600,
        programs: 150,
        days: 6,
        ..SynthConfig::smoke_test()
    })
}

fn base_config() -> SimConfig {
    SimConfig::paper_default()
        .with_neighborhood_size(200)
        .with_per_peer_storage(DataSize::from_gigabytes(2))
        .with_warmup_days(2)
}

#[test]
fn no_cache_equals_offered_load() {
    let trace = small_trace();
    let report = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
    assert_eq!(report.cache.hits, 0);
    assert_eq!(report.hit_rate(), 0.0);
    // Server carries every watched second at the stream rate.
    let expected_bits = trace
        .records()
        .iter()
        .map(|r| {
            let len = trace.catalog().length(r.program).expect("valid");
            r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
        })
        .sum::<u64>();
    assert_eq!(report.server_total.as_bits(), expected_bits);
    assert_eq!(report.sessions as usize, trace.len());
}

#[test]
fn caching_reduces_server_load() {
    let trace = small_trace();
    let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
    let lfu = run(&trace, &base_config()).expect("runs");
    assert!(lfu.cache.hits > 0, "cache must produce hits");
    assert!(
        lfu.server_total < none.server_total,
        "lfu {} vs none {}",
        lfu.server_total,
        none.server_total
    );
    assert!(lfu.server_peak.mean < none.server_peak.mean);
}

#[test]
fn coax_load_is_identical_with_and_without_cache() {
    // §VI-B: broadcast means every segment crosses the coax once no
    // matter who serves it.
    let trace = small_trace();
    let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
    let lfu = run(&trace, &base_config()).expect("runs");
    assert_eq!(none.coax_peak.mean, lfu.coax_peak.mean);
    assert_eq!(none.segment_requests, lfu.segment_requests);
}

#[test]
fn oracle_dominates_lfu_dominates_nothing() {
    let trace = small_trace();
    let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
    let lfu = run(&trace, &base_config()).expect("runs");
    let oracle = run(
        &trace,
        &base_config().with_strategy(StrategySpec::default_oracle()),
    )
    .expect("runs");
    assert!(
        oracle.server_total <= lfu.server_total,
        "oracle must not lose to LFU"
    );
    assert!(lfu.server_total < none.server_total);
}

#[test]
fn deterministic_reports() {
    let trace = small_trace();
    let a = run(&trace, &base_config()).expect("runs");
    let b = run(&trace, &base_config()).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn server_plus_peer_bytes_conserve_demand() {
    let trace = small_trace();
    let report = run(&trace, &base_config()).expect("runs");
    // Total coax bytes = total demand; server bytes = misses only.
    let coax_total: u64 = {
        // recompute demand from the trace
        trace
            .records()
            .iter()
            .map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum()
    };
    assert!(report.server_total.as_bits() <= coax_total);
    assert_eq!(
        report.cache.requests(),
        report.segment_requests,
        "every segment request is resolved exactly once"
    );
}

#[test]
fn global_lfu_runs_and_uses_feed() {
    let trace = small_trace();
    let config = base_config().with_strategy(StrategySpec::GlobalLfu {
        history: SimDuration::from_days(3),
        lag: SimDuration::from_minutes(30),
    });
    let report = run(&trace, &config).expect("runs");
    assert!(report.cache.hits > 0);
}

#[test]
fn seeking_sessions_request_interior_segments() {
    let trace = generate(&SynthConfig {
        users: 600,
        programs: 150,
        days: 6,
        seek_prob: 0.3,
        ..SynthConfig::smoke_test()
    });
    assert!(
        trace.iter().any(|r| r.offset.as_secs() > 0),
        "workload must contain seeks"
    );
    let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
    // Conservation still holds with seeks.
    let expected_bits: u64 = trace
        .records()
        .iter()
        .map(|r| {
            let len = trace.catalog().length(r.program).expect("valid");
            r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
        })
        .sum();
    assert_eq!(none.server_total.as_bits(), expected_bits);
    // Caching still works on a seeking workload.
    let lfu = run(&trace, &base_config()).expect("runs");
    assert!(lfu.cache.hits > 0);
    assert!(lfu.server_total < none.server_total);
}

#[test]
fn replication_two_runs() {
    let trace = small_trace();
    let report = run(&trace, &base_config().with_replication(2)).expect("runs");
    assert!(report.cache.hits > 0);
}

#[test]
fn parallel_matches_serial_on_every_strategy() {
    let trace = small_trace();
    for spec in [
        StrategySpec::NoCache,
        StrategySpec::Lru,
        StrategySpec::default_lfu(),
        StrategySpec::default_oracle(),
        StrategySpec::GlobalLfu {
            history: SimDuration::from_days(3),
            lag: SimDuration::from_minutes(30),
        },
    ] {
        let config = base_config().with_strategy(spec);
        let serial = run(&trace, &config).expect("serial runs");
        for threads in [1, 2, 8] {
            let parallel = run_parallel(&trace, &config, threads).expect("parallel runs");
            assert_eq!(parallel, serial, "strategy {spec:?}, threads {threads}");
        }
    }
}

#[test]
fn parallel_matches_serial_with_seeks_and_replication() {
    let trace = generate(&SynthConfig {
        users: 500,
        programs: 120,
        days: 5,
        seek_prob: 0.25,
        ..SynthConfig::smoke_test()
    });
    let config = base_config().with_replication(2);
    let serial = run(&trace, &config).expect("serial runs");
    let parallel = run_parallel(&trace, &config, 3).expect("parallel runs");
    assert_eq!(parallel, serial);
}

#[test]
fn parallel_matches_serial_under_random_placement() {
    let trace = small_trace();
    let config = base_config().with_placement(PlacementPolicy::Random { seed: 7 });
    let serial = run(&trace, &config).expect("serial runs");
    let parallel = run_parallel(&trace, &config, 4).expect("parallel runs");
    assert_eq!(parallel, serial);
}

#[test]
fn parallel_rejects_invalid_configs_like_serial() {
    let trace = small_trace();
    let config = base_config().with_neighborhood_size(0);
    assert!(run_parallel(&trace, &config, 2).is_err());
}

#[test]
fn streaming_serial_matches_resident_on_every_strategy() {
    let trace = small_trace();
    for spec in [
        StrategySpec::NoCache,
        StrategySpec::Lru,
        StrategySpec::default_lfu(),
        StrategySpec::default_oracle(),
        StrategySpec::GlobalLfu {
            history: SimDuration::from_days(3),
            lag: SimDuration::from_minutes(30),
        },
    ] {
        let config = base_config().with_strategy(spec);
        let resident = run(&trace, &config).expect("resident runs");
        for chunk in [64usize, trace.len()] {
            let streamed = run(&ChunkedTrace::new(&trace, chunk), &config).expect("streaming runs");
            assert_eq!(streamed, resident, "strategy {spec:?}, chunk {chunk}");
        }
    }
}

#[test]
fn streaming_parallel_matches_serial_with_watermark_feed() {
    let trace = small_trace();
    let config = base_config().with_strategy(StrategySpec::GlobalLfu {
        history: SimDuration::from_days(3),
        lag: SimDuration::from_minutes(30),
    });
    let serial = run(&trace, &config).expect("serial runs");
    for (chunk, threads) in [(1usize, 2usize), (64, 1), (64, 3), (trace.len(), 2)] {
        let source = ChunkedTrace::new(&trace, chunk);
        let streamed = run_parallel(&source, &config, threads).expect("streaming runs");
        assert_eq!(streamed, serial, "chunk {chunk}, threads {threads}");
    }
}

#[test]
fn streaming_rejects_invalid_configs() {
    let trace = small_trace();
    let source = ChunkedTrace::new(&trace, 64);
    let config = base_config().with_neighborhood_size(0);
    assert!(run(&source, &config).is_err());
    assert!(run_parallel(&source, &config, 2).is_err());
}

fn slab_entry(i: u32) -> (cablevod_trace::record::SessionRecord, SessionCtx) {
    let rec = cablevod_trace::record::SessionRecord::new(
        UserId::new(i),
        ProgramId::new(i),
        SimTime::from_secs(u64::from(i)),
        SimDuration::from_secs(60),
    );
    let ctx = SessionCtx {
        nbhd: 0,
        home: cablevod_hfc::ids::PeerId::new(i),
        length: SimDuration::from_hours(1),
        watched: SimDuration::from_secs(60),
        offset: 0,
        first_seg: 0,
    };
    (rec, ctx)
}

#[test]
fn active_sessions_reuse_freed_slots() {
    let mut slab = ActiveSessions::default();
    let (r0, c0) = slab_entry(0);
    let (r1, c1) = slab_entry(1);
    let a = slab.insert(r0, c0);
    let b = slab.insert(r1, c1);
    assert_ne!(a, b);
    assert_eq!(slab.allocated(), 2);

    // Freeing then inserting must reuse the slot, not grow the slab.
    slab.remove(a);
    assert_eq!(slab.free_count(), 1);
    let (r2, c2) = slab_entry(2);
    let c = slab.insert(r2, c2);
    assert_eq!(c, a, "freed slot is reused");
    assert_eq!(slab.allocated(), 2, "slab did not grow");
    assert_eq!(slab.free_count(), 0);
    assert_eq!(slab.get(c).0, r2, "slot holds the new session");
    assert_eq!(slab.get(b).0, r1, "other slot untouched");
}

/// The ROADMAP "idle-neighborhood feed retention" item: a session-less
/// neighborhood must not pin the serial streaming feed's retained window.
/// The driver's idle sweep keeps every consumption cursor moving, so live
/// feed slots stay O(sweep stride), not O(trace), on a 100k-event stream
/// with one idle neighborhood.
#[test]
fn idle_neighborhood_does_not_pin_the_streaming_feed() {
    use cablevod_trace::catalog::{ProgramCatalog, ProgramInfo};
    use cablevod_trace::rechunk::neighborhood_groups;
    use cablevod_trace::record::SessionRecord;

    let users = 150u32;
    let nbhd_size = 50u32;
    // Users of neighborhood 1 (under the same §V-B shuffle the engine
    // uses) never appear in the workload.
    let groups = neighborhood_groups(users, nbhd_size).expect("groups");
    let active: Vec<u32> = (0..users).filter(|&u| groups[u as usize] != 1).collect();
    assert!(active.len() < users as usize, "one neighborhood is idle");

    let programs = 40u32;
    let catalog: ProgramCatalog = (0..programs)
        .map(|_| ProgramInfo {
            length: SimDuration::from_hours(1),
            introduced_day: 0,
        })
        .collect();
    let total = 100_000u64;
    let records: Vec<SessionRecord> = (0..total)
        .map(|i| {
            SessionRecord::new(
                UserId::new(active[i as usize % active.len()]),
                ProgramId::new((i % u64::from(programs)) as u32),
                SimTime::from_secs(i),
                SimDuration::from_secs(60),
            )
        })
        .collect();
    let trace = Trace::new(records, catalog, users, 2).expect("valid trace");

    let config = SimConfig::paper_default()
        .with_neighborhood_size(nbhd_size)
        .with_per_peer_storage(DataSize::from_gigabytes(1))
        .with_warmup_days(0)
        .with_strategy(StrategySpec::GlobalLfu {
            history: SimDuration::from_days(1),
            lag: SimDuration::ZERO,
        });

    let source = ChunkedTrace::new(&trace, 1_024);
    let factory = config.strategy().factory();
    let (report, peak) =
        run_streaming_observed(&source, &config, factory.as_ref()).expect("streaming runs");
    let peak = peak.expect("global LFU consumes the feed");
    // Without the idle sweep, neighborhood 1's cursor floors reclamation
    // at zero and every one of the 100k slots stays live. With it, the
    // floor trails the head by at most the sweep stride plus segment
    // rounding.
    assert!(
        peak <= 8 * cablevod_cache::watermark::DEFAULT_SEGMENT_SLOTS,
        "idle neighborhood pinned the feed: {peak} live slots for a {total}-event stream"
    );
    // The sweep must not change results.
    assert_eq!(report, run(&trace, &config).expect("resident runs"));
}

/// Spilled schedule lifecycle: the sidecar exists while windows read it,
/// feeds them the spilled events, and is removed when the last reference
/// drops.
#[test]
fn schedule_spill_cleans_up_its_sidecar() {
    use super::schedule::SidecarSpill;
    use cablevod_cache::ScheduleSource;
    use cablevod_hfc::ids::NeighborhoodId;

    let mut spill = SidecarSpill::create(2, vec![3, 5]).expect("create");
    for i in 0..10u64 {
        spill
            .push(
                (i % 2) as u32,
                SimTime::from_secs(i * 10),
                ProgramId::new((i % 2) as u32),
            )
            .expect("push");
    }
    let schedules = spill.into_schedules().expect("finish");
    let path = schedules.spill_path();
    assert!(path.exists(), "sidecar exists while schedules are live");

    let mut window = schedules
        .window(NeighborhoodId::new(0))
        .expect("window")
        .expect("spilled sources always carry a schedule");
    window
        .prefetch(SimTime::from_secs(1_000))
        .expect("prefetch");
    let mut seen = 0;
    while window.next_entering(SimTime::from_secs(1_000)).is_some() {
        seen += 1;
    }
    assert_eq!(seen, 5, "neighborhood 0 reads exactly its events");
    assert_eq!(
        window.cost(ProgramId::new(1)),
        5,
        "costs ride in the sidecar"
    );
    assert!(
        schedules.decode_stats().chunks > 0,
        "sidecar reads are counted"
    );

    drop(window);
    drop(schedules);
    assert!(!path.exists(), "sidecar removed with the last reference");
}

#[test]
fn active_sessions_bound_allocation_by_concurrency() {
    // Churning insert/remove pairs must keep the slab at the concurrency
    // high-water mark, not the total session count.
    let mut slab = ActiveSessions::default();
    let mut live = Vec::new();
    for i in 0..1_000u32 {
        let (r, c) = slab_entry(i);
        live.push(slab.insert(r, c));
        if live.len() == 4 {
            // retire the oldest three
            for slot in live.drain(..3) {
                slab.remove(slot);
            }
        }
    }
    assert!(
        slab.allocated() <= 4,
        "slab grew to {} slots for 4-concurrent sessions",
        slab.allocated()
    );
}
