//! Per-neighborhood sharding: isolated plant slices, shard scheduling,
//! and the two parallel entry drivers.
//!
//! The paper's unit of isolation is the neighborhood: per-event state
//! (cache, boxes, coax) is neighborhood-local, the shared central-server
//! meter merges because bucket accounting is commutative
//! ([`RateMeter::merge`]), and global-feed visibility is reproduced by the
//! provider seam (precomputed bounds on resident runs, the watermark
//! frontier on streaming runs). Each shard therefore runs the **same**
//! [`SessionDriver`] lifecycle as the serial engine, against a
//! [`ShardPlant`] instead of the whole topology:
//!
//! * resident: shards are independent jobs on the work-stealing pool
//!   ([`runner::run_indexed`]) — no shard ever waits on another;
//! * streaming: shards are cooperative tasks multiplexed onto workers
//!   ([`drive_worker`]), parked whenever the watermark frontier has not
//!   reached the record they must start next, so any worker count is
//!   deadlock-free (see the frontier-liveness note in [`super`]).
//!
//! Both drivers size their worker sets from the process-wide permit
//! ledger in [`runner`], so a sharded run composes with a concurrently
//! executing sweep instead of oversubscribing the machine (and the
//! caller's own thread always drives, so a dry ledger just means a
//! single-worker run).

use std::sync::atomic::{AtomicBool, Ordering};

use cablevod_cache::{IndexStats, SharedFeed, StrategyFactory, WatermarkFeed};
use cablevod_hfc::coax::CoaxNetwork;
use cablevod_hfc::ids::{NeighborhoodId, PeerId};
use cablevod_hfc::meter::RateMeter;
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::stb::{SetTopBox, StbStore};
use cablevod_hfc::topology::Topology;
use cablevod_hfc::units::SimTime;
use cablevod_trace::record::SessionRecord;
use cablevod_trace::source::TraceSource;

use super::fault::FaultingPlant;
use super::feed::build_feed;
use super::lifecycle::{EngineCounters, SegmentPlant, SessionDriver, Step, UserMap, ABORTED};
use super::report::merge_outcomes;
use super::stream::{ResidentSupply, StreamSupply};
use super::{build_index, build_schedules, build_topology, precompute_sessions, shard_plans};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::{DegradationReport, SimReport};
use crate::runner;

/// One neighborhood's set-top boxes, addressed by global [`PeerId`]
/// through a shared peer-to-local-position table (no hashing).
pub(super) struct ShardStbs<'a> {
    /// The neighborhood whose members these boxes are.
    id: NeighborhoodId,
    stbs: Vec<SetTopBox>,
    /// `positions[peer.index()]` is the peer's slot in `stbs`; only
    /// meaningful for this shard's members, so membership is checked
    /// against `nbhd_of` first.
    positions: &'a [u32],
    /// Every peer's neighborhood ([`Topology::peer_neighborhoods`]):
    /// upholds the [`StbStore`] contract that a foreign peer is
    /// `UnknownPeer`, never silently another member's box.
    nbhd_of: &'a [NeighborhoodId],
}

impl StbStore for ShardStbs<'_> {
    fn stb_mut(&mut self, peer: PeerId) -> Result<&mut SetTopBox, cablevod_hfc::error::HfcError> {
        if self.nbhd_of.get(peer.index()) != Some(&self.id) {
            return Err(cablevod_hfc::error::HfcError::UnknownPeer { peer });
        }
        self.stbs
            .get_mut(self.positions[peer.index()] as usize)
            .ok_or(cablevod_hfc::error::HfcError::UnknownPeer { peer })
    }
}

/// One neighborhood's isolated slice of the plant: its boxes, its coax
/// meter, and a private central-server meter that is merged into the
/// shared one after the shard completes. (No fiber meter: [`SimReport`]
/// never reads fiber data, so shards skip that bucket-split work; the
/// serial path keeps it only because its [`Topology`] owns the links.)
pub(super) struct ShardPlant<'a> {
    id: NeighborhoodId,
    stbs: ShardStbs<'a>,
    pub(super) coax: CoaxNetwork,
    pub(super) server: RateMeter,
}

impl<'a> ShardPlant<'a> {
    pub(super) fn build(
        n: usize,
        topo: &'a Topology,
        config: &SimConfig,
        positions: &'a [u32],
    ) -> Result<Self, SimError> {
        let id = NeighborhoodId::new(n as u32);
        let stbs: Vec<SetTopBox> = topo
            .neighborhood(id)?
            .members()
            .iter()
            .map(|&p| SetTopBox::new(p, config.per_peer_storage(), config.stream_slots()))
            .collect();
        Ok(ShardPlant {
            id,
            stbs: ShardStbs {
                id,
                stbs,
                positions,
                nbhd_of: topo.peer_neighborhoods(),
            },
            coax: CoaxNetwork::new(*config.coax_spec()),
            server: RateMeter::hourly(),
        })
    }
}

impl SegmentPlant for ShardPlant<'_> {
    fn stbs(&mut self) -> &mut dyn StbStore {
        &mut self.stbs
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(
            nbhd, self.id,
            "shard received a foreign neighborhood's miss"
        );
        self.server.record(start, end, size);
        Ok(())
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(
            nbhd, self.id,
            "shard received a foreign neighborhood's broadcast"
        );
        self.coax.record_broadcast(start, end, size);
        Ok(())
    }
}

/// What one shard hands back for the deterministic merge.
pub(super) struct ShardOutcome {
    pub(super) coax: CoaxNetwork,
    pub(super) server: RateMeter,
    pub(super) stats: IndexStats,
    pub(super) counters: EngineCounters,
    /// This shard's one-neighborhood degradation section, `None` exactly
    /// when the serial engine's would be (default counting admission over
    /// an empty fault plan).
    pub(super) degradation: Option<DegradationReport>,
}

impl ShardOutcome {
    pub(super) fn from_driver<F, R>(
        driver: SessionDriver<'_, FaultingPlant<ShardPlant<'_>>, F, R>,
    ) -> Self
    where
        F: cablevod_cache::FeedProvider,
        R: super::lifecycle::RecordSupply<F>,
    {
        let (plant, indexes, counters) = driver.into_parts();
        let (plant, degradation) = plant.into_parts();
        ShardOutcome {
            coax: plant.coax,
            server: plant.server,
            stats: *indexes[0].stats(),
            counters,
            degradation,
        }
    }
}

/// The resident sharded driver: every shard replays its own record subset
/// (in trace order, interleaved with its continuation heap — exactly the
/// relative order the serial engine would process them in) over the
/// work-stealing pool, with the precomputed global feed shared read-only.
pub(super) fn run_parallel_resident<S: TraceSource + ?Sized>(
    records: &[SessionRecord],
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
    threads: usize,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let catalog = source.catalog();

    // The topology is built once for membership, capacities and placement
    // determinism, then only read; every shard owns fresh mutable state.
    let topo = build_topology(source, config)?;
    let users = UserMap::from_topology(&topo);

    let ctxs = precompute_sessions(records, catalog, &users, &segmenter)?;
    let schedules = build_schedules(records, catalog, &topo, config, &segmenter, strategy)?;
    let feed = build_feed(records, &ctxs, config, &segmenter, strategy);
    let positions = topo.local_positions();

    let nbhd_count = topo.neighborhood_count();
    let mut shard_records: Vec<Vec<u32>> = vec![Vec::new(); nbhd_count];
    for (i, ctx) in ctxs.iter().enumerate() {
        shard_records[ctx.nbhd as usize].push(i as u32);
    }

    let outcomes = runner::run_indexed(nbhd_count, threads, |n| {
        let index = build_index(n, &topo, config, &segmenter, schedules.window(n)?, strategy)?;
        let plant = FaultingPlant::new(
            ShardPlant::build(n, &topo, config, &positions)?,
            config,
            n as u32,
            1,
        );
        let supply = ResidentSupply::new(records, &ctxs, Some(&shard_records[n]));
        let mut driver = SessionDriver::new(
            supply,
            feed.as_ref().map(cablevod_cache::PrecomputedFeed::new),
            plant,
            vec![index],
            n as u32,
            config,
            segmenter,
            None,
        );
        driver.run()?;
        Ok(ShardOutcome::from_driver(driver))
    });

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    merge_outcomes(outcomes, days, warmup, nbhd_count)
}

/// The streaming sharded driver: shards stream their chunk runs (see
/// [`super::stream`]) and synchronize global-feed visibility through the
/// watermark protocol, multiplexed as cooperative tasks.
pub(super) fn run_parallel_streaming<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
    threads: usize,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let total = source.record_count();
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let topo = build_topology(source, config)?;
    let nbhd_count = topo.neighborhood_count();

    let plan = shard_plans(source, &topo, config, &segmenter, strategy)?;
    let users = UserMap::from_topology(&topo);
    let feed = super::feed::wants_feed(strategy)
        .then(|| WatermarkFeed::new(total, nbhd_count, nbhd_count));
    let positions = topo.local_positions();
    let aborted = AtomicBool::new(false);

    // Workers beyond the caller come from the shared ledger
    // ([`runner::take_permits`]): a sharded job started while a sweep
    // holds the machine begins with fewer workers instead of
    // oversubscribing, and each permit returns the moment its worker's
    // shards drain. Shard tasks cannot migrate between workers, so the
    // split is fixed at entry; the caller always drives stripe 0.
    let permits = runner::take_permits(threads.clamp(1, nbhd_count) - 1);
    let workers = 1 + permits.len();
    let mut collected: Vec<Option<Result<ShardOutcome, SimError>>> =
        (0..nbhd_count).map(|_| None).collect();
    let worker_results: Vec<Vec<(usize, Result<ShardOutcome, SimError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = permits
                .into_iter()
                .zip(1..workers)
                .map(|(permit, w)| {
                    let topo = &topo;
                    let plan = &plan;
                    let users = &users;
                    let positions = &positions;
                    let feed = feed.as_ref();
                    let aborted = &aborted;
                    let segmenter = &segmenter;
                    scope.spawn(move || {
                        let results = drive_worker(
                            w, workers, nbhd_count, source, topo, users, config, strategy,
                            *segmenter, plan, positions, feed, aborted,
                        );
                        drop(permit);
                        results
                    })
                })
                .collect();
            let mine = drive_worker(
                0,
                workers,
                nbhd_count,
                source,
                &topo,
                &users,
                config,
                strategy,
                segmenter,
                &plan,
                &positions,
                feed.as_ref(),
                &aborted,
            );
            let mut all: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            all.push(mine);
            all
        });
    for (nbhd, result) in worker_results.into_iter().flatten() {
        collected[nbhd] = Some(result);
    }

    // Prefer a shard's real failure over the abort sentinel its siblings
    // raised while bailing out.
    if aborted.load(Ordering::Relaxed) {
        let mut sentinel = None;
        for result in collected.iter_mut() {
            match result.take() {
                Some(Err(SimError::Config { reason })) if reason == ABORTED => {
                    sentinel = Some(SimError::Config { reason });
                }
                Some(Err(e)) => return Err(e),
                _ => {}
            }
        }
        return Err(sentinel.expect("abort flag implies at least one error"));
    }

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    merge_outcomes(
        collected
            .into_iter()
            .map(|r| r.expect("every shard reports exactly once")),
        days,
        warmup,
        nbhd_count,
    )
}

/// The shard drivers of the streaming sharded path.
type ShardDriver<'a, S> =
    SessionDriver<'a, FaultingPlant<ShardPlant<'a>>, SharedFeed<'a>, StreamSupply<'a, S>>;

/// Drives the shard tasks assigned to worker `w` (neighborhoods `w`,
/// `w + stride`, ...), round-robin, yielding the CPU only when every
/// task is parked on the feed frontier.
#[allow(clippy::too_many_arguments)]
fn drive_worker<'a, S: TraceSource + ?Sized>(
    w: usize,
    stride: usize,
    nbhd_count: usize,
    source: &'a S,
    topo: &'a Topology,
    users: &'a UserMap,
    config: &'a SimConfig,
    strategy: &'a dyn StrategyFactory,
    segmenter: Segmenter,
    plan: &'a super::StreamPlan,
    positions: &'a [u32],
    feed: Option<&'a WatermarkFeed>,
    aborted: &'a AtomicBool,
) -> Vec<(usize, Result<ShardOutcome, SimError>)> {
    let mut results = Vec::new();
    let mut tasks: Vec<(usize, ShardDriver<'a, S>)> = Vec::new();
    for nbhd in (w..nbhd_count).step_by(stride) {
        let built = (|| {
            let index = build_index(
                nbhd,
                topo,
                config,
                &segmenter,
                plan.schedules.window(nbhd)?,
                strategy,
            )?;
            let plant = FaultingPlant::new(
                ShardPlant::build(nbhd, topo, config, positions)?,
                config,
                nbhd as u32,
                1,
            );
            let supply = StreamSupply::new(
                source,
                plan.shard_runs[nbhd].iter().map(Vec::as_slice),
                plan.filtered.then_some(nbhd as u32),
                users.clone(),
                config,
                segmenter,
            );
            let provider = feed.map(|f| SharedFeed::new(f, nbhd, nbhd..nbhd + 1));
            Ok::<_, SimError>(SessionDriver::new(
                supply,
                provider,
                plant,
                vec![index],
                nbhd as u32,
                config,
                segmenter,
                Some(aborted),
            ))
        })();
        match built {
            Ok(driver) => tasks.push((nbhd, driver)),
            Err(e) => {
                // Do NOT finish this shard's feed watermark: its events were
                // never published, and raising the mark would let siblings
                // pass the frontier check into unpublished slots. The abort
                // flag unparks them instead (checked at every step entry).
                aborted.store(true, Ordering::Relaxed);
                results.push((nbhd, Err(e)));
            }
        }
    }

    while !tasks.is_empty() {
        let mut any_progress = false;
        let mut i = 0;
        while i < tasks.len() {
            match tasks[i].1.step() {
                Ok(Step::Done) => {
                    let (nbhd, driver) = tasks.swap_remove(i);
                    results.push((nbhd, Ok(ShardOutcome::from_driver(driver))));
                    any_progress = true;
                }
                Ok(Step::Blocked { progressed }) => {
                    any_progress |= progressed;
                    i += 1;
                }
                Ok(Step::Horizon { .. }) => {
                    unreachable!("offline shard steps never park on a horizon")
                }
                Err(e) => {
                    // As at build failure: leave the watermark where honest
                    // publication got to, and rely on the abort flag — a
                    // finished mark over unpublished slots would turn this
                    // error into sibling panics on empty feed slots.
                    aborted.store(true, Ordering::Relaxed);
                    let (nbhd, _) = tasks.swap_remove(i);
                    results.push((nbhd, Err(e)));
                    any_progress = true;
                }
            }
        }
        if !any_progress {
            std::thread::yield_now();
        }
    }
    results
}
