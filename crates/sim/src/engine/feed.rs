//! Feed glue: constructing the right [`FeedProvider`] carrier for each
//! entry driver.
//!
//! The lifecycle core never touches a concrete feed type — it publishes,
//! gates and syncs through [`FeedProvider`] (see
//! [`cablevod_cache::feed`]). This module is the engine-side selection
//! logic:
//!
//! * **resident runs** precompute the whole [`GlobalFeed`] in one pass
//!   over the record slice ([`build_feed`]) and hand every driver a
//!   [`PrecomputedFeed`](cablevod_cache::PrecomputedFeed) over it —
//!   consumption is bounded per session by its own record index, which
//!   equals grow-as-you-go publication exactly;
//! * **streaming runs** (serial and sharded alike) share one
//!   [`WatermarkFeed`](cablevod_cache::WatermarkFeed) through
//!   [`SharedFeed`](cablevod_cache::SharedFeed) handles: supplies publish
//!   records as they stage them, the frontier gates consumption, and
//!   every sync reports the strategy's cursor back so the carrier keeps
//!   its memory O(unconsumed window) instead of O(trace).

use cablevod_cache::{GlobalFeed, StrategyFactory};
use cablevod_hfc::segment::Segmenter;
use cablevod_trace::record::SessionRecord;

use super::lifecycle::{feed_event, SessionCtx};
use crate::config::SimConfig;

/// Whether the strategy consumes the global feed through either hook —
/// visibility-gated ingestion ([`needs_feed`](StrategyFactory::needs_feed))
/// or the feed-driven prefetch window
/// ([`needs_prefetch`](StrategyFactory::needs_prefetch)). Both ride the
/// same carrier, so one gate decides whether a run wires the feed up.
pub(super) fn wants_feed(strategy: &dyn StrategyFactory) -> bool {
    strategy.needs_feed() || strategy.needs_prefetch()
}

/// Builds the full global feed from a resident record slice (a pure
/// function of the trace — see the module docs of [`super`]), or `None`
/// when the strategy ignores it.
pub(super) fn build_feed(
    records: &[SessionRecord],
    ctxs: &[SessionCtx],
    config: &SimConfig,
    segmenter: &Segmenter,
    strategy: &dyn StrategyFactory,
) -> Option<GlobalFeed> {
    wants_feed(strategy).then(|| {
        let mut feed = GlobalFeed::new();
        for (rec, ctx) in records.iter().zip(ctxs) {
            feed.publish(feed_event(rec, ctx, config, segmenter));
        }
        feed
    })
}
