//! Record supplies: where a [`SessionDriver`](super::lifecycle::
//! SessionDriver) gets its sessions from.
//!
//! * [`ResidentSupply`] — a fully resident record slice with precomputed
//!   contexts, optionally restricted to one shard's record subset. Zero
//!   staging cost; feed events were precomputed, so it publishes nothing.
//! * [`StreamSupply`] — the out-of-core supply: a gidx-ordered **merge**
//!   over one or more [`ChunkRun`]s (sequential cursors over gidx-sorted
//!   chunk lists), decoding one chunk per run at a time. It computes
//!   contexts at ingestion, optionally filters to one neighborhood, and
//!   publishes each accepted record's feed event. Publication timing never
//!   affects results (consumers bound themselves by their own record
//!   index), so each path picks the cheapest watermark granularity: a
//!   **single-run** supply stages whole chunks, publishing at scan time
//!   and advancing its watermark straight past each chunk (shards stay a
//!   chunk apart on the frontier, never in per-record lock-step), while a
//!   **multi-run** merge stages record by record and advances just past
//!   each merged head.
//!
//! One merge shape covers every streaming path:
//!
//! | path                                   | runs                     | filter |
//! |----------------------------------------|--------------------------|--------|
//! | serial, time-major source              | 1 (all chunks)           | no     |
//! | serial, neighborhood-major source      | 1 per placement cell     | no     |
//! | shard, time-major source               | 1 (runtime chunk index)  | yes    |
//! | shard, matching neighborhood-major     | its group's cells (≥ 1)  | no     |
//! | shard, mismatched neighborhood-major   | 1 per cell (pruned)      | yes    |
//!
//! A *placement cell* is the finest partition a multi-index source
//! carries — the intersection of its per-size groupings (a single-index
//! file has one cell per group). A shard whose group is exactly one cell
//! runs the single-run fast path; a group spanning several cells merges
//! just those cells' runs. A single-run supply degenerates to plain
//! sequential streaming with no merge overhead; the multi-run merge does
//! a linear min-scan over run heads per record (run counts are cell
//! counts — tens to a few hundred — and only the merge paths pay it).

use std::collections::VecDeque;

use cablevod_cache::FeedProvider;
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::units::SimTime;
use cablevod_trace::catalog::ProgramCatalog;
use cablevod_trace::record::SessionRecord;
use cablevod_trace::source::TraceSource;

use super::lifecycle::{
    feed_event, session_ctx, PendingSession, RecordSupply, SessionCtx, UserMap,
};
use crate::config::SimConfig;
use crate::error::SimError;

/// Resident record slice with precomputed contexts, served in trace order
/// (or the order of an explicit index subset).
pub(super) struct ResidentSupply<'a> {
    records: &'a [SessionRecord],
    ctxs: &'a [SessionCtx],
    /// When present, the (ascending) record indices this supply serves —
    /// one shard's records. Otherwise every record.
    subset: Option<&'a [u32]>,
    pos: usize,
}

impl<'a> ResidentSupply<'a> {
    pub(super) fn new(
        records: &'a [SessionRecord],
        ctxs: &'a [SessionCtx],
        subset: Option<&'a [u32]>,
    ) -> Self {
        ResidentSupply {
            records,
            ctxs,
            subset,
            pos: 0,
        }
    }

    fn current(&self) -> Option<u64> {
        match self.subset {
            Some(subset) => subset.get(self.pos).map(|&i| u64::from(i)),
            None => (self.pos < self.records.len()).then_some(self.pos as u64),
        }
    }
}

impl<F: FeedProvider> RecordSupply<F> for ResidentSupply<'_> {
    fn peek(&mut self, _feed: &mut Option<F>) -> Result<Option<(SimTime, u64)>, SimError> {
        Ok(self
            .current()
            .map(|gidx| (self.records[gidx as usize].start, gidx)))
    }

    fn take(&mut self) -> PendingSession {
        let gidx = self.current().expect("a record is staged");
        self.pos += 1;
        PendingSession {
            gidx,
            rec: self.records[gidx as usize],
            ctx: self.ctxs[gidx as usize],
        }
    }
}

/// A sequential cursor over a gidx-ascending list of chunk ids, holding
/// one decoded chunk at a time.
pub(super) struct ChunkRun<'a, S: TraceSource + ?Sized> {
    source: &'a S,
    chunks: &'a [u32],
    next: usize,
    buf: Vec<(u64, SessionRecord)>,
    pos: usize,
}

impl<'a, S: TraceSource + ?Sized> ChunkRun<'a, S> {
    pub(super) fn new(source: &'a S, chunks: &'a [u32]) -> Self {
        ChunkRun {
            source,
            chunks,
            next: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The run's head record, decoding forward as needed; `None` at end.
    pub(super) fn head(&mut self) -> Result<Option<(u64, SessionRecord)>, SimError> {
        while self.pos == self.buf.len() {
            if self.decode_next()?.is_none() {
                return Ok(None);
            }
        }
        Ok(Some(self.buf[self.pos]))
    }

    pub(super) fn pop_head(&mut self) {
        self.pos += 1;
    }

    /// The chunk id the current head was decoded from. Only valid after
    /// [`head`](ChunkRun::head) returned `Some`.
    pub(super) fn head_chunk(&self) -> u32 {
        self.chunks[self.next - 1]
    }

    /// Decodes the run's next chunk into the internal buffer (batch
    /// consumption); `None` at end of run.
    fn decode_next(&mut self) -> Result<Option<&[(u64, SessionRecord)]>, SimError> {
        let Some(&chunk) = self.chunks.get(self.next) else {
            return Ok(None);
        };
        self.source
            .read_chunk_indexed(chunk as usize, &mut self.buf)?;
        self.pos = 0;
        self.next += 1;
        Ok(Some(&self.buf))
    }

    /// Lower bound on the global index of the run's next *undecoded*
    /// record: the next chunk's first index, or `u64::MAX` at end of run.
    fn next_chunk_first_index(&self) -> u64 {
        self.chunks
            .get(self.next)
            .map_or(u64::MAX, |&c| self.source.chunk_first_index(c as usize))
    }
}

/// The streaming supply (see the module docs).
pub(super) struct StreamSupply<'a, S: TraceSource + ?Sized> {
    runs: Vec<ChunkRun<'a, S>>,
    /// Keep only records of this neighborhood (foreign records are
    /// discarded unpublished: their owning shard publishes them).
    filter: Option<u32>,
    users: UserMap,
    catalog: &'a ProgramCatalog,
    config: &'a SimConfig,
    segmenter: Segmenter,
    seg_len: u64,
    /// Staged sessions: up to a whole chunk's worth on the single-run
    /// batch path, at most one on the multi-run merge path.
    pending: VecDeque<PendingSession>,
}

impl<'a, S: TraceSource + ?Sized> StreamSupply<'a, S> {
    pub(super) fn new(
        source: &'a S,
        run_chunks: impl IntoIterator<Item = &'a [u32]>,
        filter: Option<u32>,
        users: UserMap,
        config: &'a SimConfig,
        segmenter: Segmenter,
    ) -> Self {
        StreamSupply {
            runs: run_chunks
                .into_iter()
                .map(|chunks| ChunkRun::new(source, chunks))
                .collect(),
            filter,
            users,
            catalog: source.catalog(),
            config,
            segmenter,
            seg_len: segmenter.segment_len().as_secs(),
            pending: VecDeque::new(),
        }
    }

    /// Accepts one decoded record: filter, context, feed publication
    /// (filtered-out foreign records are discarded unpublished — their
    /// owning shard publishes them).
    fn accept<F: FeedProvider>(
        &mut self,
        gidx: u64,
        rec: &SessionRecord,
        feed: &mut Option<F>,
    ) -> Result<(), SimError> {
        if let Some(keep) = self.filter {
            if self.users.neighborhood_of_user(rec.user)?.index() as u32 != keep {
                return Ok(());
            }
        }
        let ctx = session_ctx(rec, self.catalog, &self.users, self.seg_len)?;
        if let Some(feed) = feed.as_mut() {
            feed.publish(gidx, feed_event(rec, &ctx, self.config, &self.segmenter));
        }
        self.pending.push_back(PendingSession {
            gidx,
            rec: *rec,
            ctx,
        });
        Ok(())
    }

    /// Single-run staging: decode whole chunks, publishing every accepted
    /// record's feed event at scan time (safe — consumers bound themselves
    /// by their own record index, so an early-published event is never
    /// visible early) and advancing the watermark straight past each
    /// decoded chunk. Chunk-granular watermarks keep shards far apart on
    /// the feed frontier instead of in per-record lock-step.
    fn stage_batch<F: FeedProvider>(&mut self, feed: &mut Option<F>) -> Result<(), SimError> {
        while self.pending.is_empty() {
            if self.runs[0].decode_next()?.is_none() {
                return Ok(()); // exhausted
            }
            // Consume the decoded chunk wholesale (the buffer is loaned
            // out and handed back so its allocation is reused).
            let records = std::mem::take(&mut self.runs[0].buf);
            for &(gidx, ref rec) in &records {
                self.accept(gidx, rec, feed)?;
            }
            self.runs[0].pos = records.len();
            self.runs[0].buf = records;
            if let Some(feed) = feed.as_mut() {
                // Everything before the run's next chunk is published (our
                // accepted records above) or foreign.
                feed.advance(self.runs[0].next_chunk_first_index());
            }
        }
        Ok(())
    }

    /// Multi-run staging: merge the runs by global index, one record at a
    /// time, advancing the watermark just past each staged record.
    fn stage_merge<F: FeedProvider>(&mut self, feed: &mut Option<F>) -> Result<(), SimError> {
        while self.pending.is_empty() {
            // The run holding the globally next record: minimum head gidx.
            let mut best: Option<(u64, usize)> = None;
            for i in 0..self.runs.len() {
                if let Some((gidx, _)) = self.runs[i].head()? {
                    if best.is_none_or(|(b, _)| gidx < b) {
                        best = Some((gidx, i));
                    }
                }
            }
            let Some((gidx, run)) = best else {
                return Ok(()); // exhausted
            };
            let (_, rec) = self.runs[run].head()?.expect("head just observed");
            self.runs[run].pop_head();
            self.accept(gidx, &rec, feed)?;
            if let Some(feed) = feed.as_mut() {
                // Everything below this record is published (our earlier
                // records, in gidx order) or foreign — discards advance
                // the watermark too, so filtered merges never stall the
                // frontier on records they will never own.
                feed.advance(gidx + 1);
            }
        }
        Ok(())
    }

    fn stage<F: FeedProvider>(&mut self, feed: &mut Option<F>) -> Result<(), SimError> {
        if self.runs.len() == 1 {
            self.stage_batch(feed)
        } else if !self.runs.is_empty() {
            self.stage_merge(feed)
        } else {
            Ok(())
        }
    }
}

impl<S: TraceSource + ?Sized, F: FeedProvider> RecordSupply<F> for StreamSupply<'_, S> {
    fn peek(&mut self, feed: &mut Option<F>) -> Result<Option<(SimTime, u64)>, SimError> {
        if self.pending.is_empty() {
            self.stage(feed)?;
        }
        Ok(self.pending.front().map(|p| (p.rec.start, p.gidx)))
    }

    fn take(&mut self) -> PendingSession {
        self.pending.pop_front().expect("a record is staged")
    }
}
