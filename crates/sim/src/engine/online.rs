//! The **online** decision tier: the engine as a long-running
//! admission/placement service (ROADMAP item 2).
//!
//! Offline, a run is a closed computation: the supply scans a finished
//! trace and the driver burns through every event. Online, sessions
//! arrive over time — from a paced trace replay or a socket — and the
//! engine must answer *between* events. This module turns the very same
//! `SessionDriver` lifecycle into a resumable service with three public
//! seams:
//!
//! * **submit** — hand the engine one session request. The record's
//!   context is computed at ingress (exactly `session_ctx`, like every
//!   other supply), its feed event is published into a shared
//!   [`WatermarkFeed`] and the producer watermark is advanced past it, so
//!   the decision tier is never parked on the frontier. The session is
//!   then staged on a `LiveSupply` — a `RecordSupply` over a queue
//!   that is fed by the caller instead of a file scan.
//! * **advance_to** — step the lifecycle cooperatively up to the live
//!   clock's "now" (`SessionDriver::step_until`): every event at or
//!   before the horizon is processed in exactly the order the offline
//!   engine would process it, then the driver parks at the edge of
//!   simulated time instead of finishing.
//! * **lookup** — read a neighborhood's current placement for a program
//!   straight from its [`IndexServer`], without disturbing the lifecycle.
//!
//! Every strategy in the registry, fault plans, and enforcing
//! admission/retry work unchanged — they live below the seams this
//! module plugs into. Two engines are offered: [`serve_serial`] (one
//! driver, the whole plant — the online analogue of [`run`](super::run))
//! and [`serve_sharded`] (per-neighborhood `ShardPlant` drivers stepped
//! round-robin and merged with the same fold as
//! [`run_parallel`](super::run_parallel)). Both produce a final
//! [`SimReport`] **byte-identical** to the offline replay of the same
//! session sequence — the loopback equivalence tests pin this per
//! strategy for both tiers.
//!
//! # Ordering contract
//!
//! The offline engine processes events in global time order with records
//! tie-breaking ahead of continuations. To reproduce that order exactly,
//! submissions must respect two monotonicity rules, both enforced with
//! explicit errors:
//!
//! 1. session start times never decrease across submissions (the trace
//!    is sorted; a live ingress stamps arrivals with a monotone clock);
//! 2. a session's start is strictly **after** the last advanced horizon
//!    (events at or before the horizon are already processed — a
//!    submission "in the past" can no longer be interleaved correctly).
//!
//! The epoch counter increments whenever an `advance_to` processed at
//! least one event — a conservative over-approximation of "placement
//! state changed" that is always safe for front-tier response caches
//! (they may re-ask the decision tier needlessly, but can never serve a
//! stale placement as fresh).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use cablevod_cache::{IndexServer, SharedFeed, StrategyFactory, WatermarkFeed};
use cablevod_hfc::ids::{PeerId, ProgramId, SegmentId};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::units::SimTime;
use cablevod_trace::catalog::ProgramCatalog;
use cablevod_trace::record::SessionRecord;
use cablevod_trace::source::TraceSource;

use super::fault::FaultingPlant;
use super::feed::wants_feed;
use super::lifecycle::{
    feed_event, session_ctx, PendingSession, RecordSupply, SessionDriver, Step, UserMap,
};
use super::report::{assemble_serial_report, merge_outcomes};
use super::schedule::ScheduleSupply;
use super::shard::{ShardOutcome, ShardPlant};
use super::{build_index, build_indexes, build_schedules, build_topology_for};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimReport;

/// The static shape of an online serving session: everything the engine
/// must know up front that an offline run would read from its trace
/// source.
#[derive(Debug, Clone, Copy)]
pub struct OnlineSpec<'a> {
    /// The program catalog sessions are validated and sized against.
    pub catalog: &'a ProgramCatalog,
    /// Number of subscribers (fixes the topology, like
    /// [`TraceSource::user_count`]).
    pub user_count: u32,
    /// Accounting horizon in days for the final report (peak windows,
    /// hourly profiles). The online analogue of [`TraceSource::days`].
    pub days: u64,
    /// Upper bound on sessions ever submitted (sizes the shared feed; a
    /// submission beyond it is rejected with an explicit error).
    pub capacity: u64,
    /// Resident records for strategies that need an offline access
    /// schedule (Oracle). `None` means such strategies are rejected —
    /// a socket ingress cannot see the future.
    pub schedule_records: Option<&'a [SessionRecord]>,
}

impl<'a> OnlineSpec<'a> {
    /// The spec for replaying `source` online: same catalog, users, days
    /// and capacity as the offline run, with resident records (when the
    /// source has them) available for Oracle schedules.
    pub fn from_source<S: TraceSource + ?Sized>(source: &'a S) -> Self {
        OnlineSpec {
            catalog: source.catalog(),
            user_count: source.user_count(),
            days: source.days(),
            capacity: source.record_count(),
            schedule_records: source.resident_records(),
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.capacity > u64::from(u32::MAX) {
            return Err(SimError::Config {
                reason: "online sessions beyond 2^32 are not supported".into(),
            });
        }
        Ok(())
    }
}

/// A neighborhood's current placement answer for one program, read
/// straight off its [`IndexServer`] between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnlinePlacement {
    /// When the program was admitted into the neighborhood cache, if it
    /// currently is.
    pub admitted_at: Option<SimTime>,
    /// The peer holding the program's first segment, if placed.
    pub location: Option<PeerId>,
}

impl OnlinePlacement {
    fn read(index: &IndexServer, program: ProgramId) -> Self {
        OnlinePlacement {
            admitted_at: index.admitted_at(program),
            location: index.location_of(SegmentId::new(program, 0)),
        }
    }
}

/// The online engine the serving callback drives (see the module docs
/// for the ordering contract).
pub trait OnlineEngine {
    /// Submits one session request and returns its global index.
    ///
    /// # Errors
    ///
    /// Rejects submissions beyond [`OnlineSpec::capacity`], starts that
    /// regress, starts at or before the advanced horizon, and records
    /// referencing unknown users or programs.
    fn submit(&mut self, rec: SessionRecord) -> Result<u64, SimError>;

    /// Processes every pending event at or before `now`; returns whether
    /// any event was processed (and hence whether the epoch was bumped).
    ///
    /// # Errors
    ///
    /// Rejects regressing horizons and propagates lifecycle failures.
    fn advance_to(&mut self, now: SimTime) -> Result<bool, SimError>;

    /// The placement answer for `program` in neighborhood `nbhd`, as of
    /// the last advance.
    ///
    /// # Errors
    ///
    /// Rejects unknown neighborhoods.
    fn lookup(&self, nbhd: u32, program: ProgramId) -> Result<OnlinePlacement, SimError>;

    /// The placement epoch: incremented whenever an advance processed at
    /// least one event. Response caches key their entries on this.
    fn epoch(&self) -> u64;

    /// Sessions submitted so far.
    fn submitted(&self) -> u64;

    /// Number of neighborhoods the plant serves.
    fn neighborhoods(&self) -> usize;
}

/// Runs the serial online engine (one driver, the whole plant) for the
/// duration of `session`, then drains every remaining event and returns
/// the callback's value together with the final report.
///
/// The report is byte-identical to [`run`](super::run) over the same
/// session sequence.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and specs
/// (including schedule-needing strategies without
/// [`OnlineSpec::schedule_records`]), and propagates callback and
/// lifecycle failures.
pub fn serve_serial<T>(
    spec: &OnlineSpec<'_>,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
    session: impl FnOnce(&mut dyn OnlineEngine) -> Result<T, SimError>,
) -> Result<(T, SimReport), SimError> {
    config.validate()?;
    spec.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let mut topo = build_topology_for(spec.user_count, config)?;
    let nbhd_count = topo.neighborhood_count();
    let users = UserMap::from_topology(&topo);
    let schedules = online_schedules(spec, &topo, config, &segmenter, strategy)?;
    let indexes = build_indexes(&topo, config, &segmenter, &schedules, strategy)?;

    let wfeed = wants_feed(strategy).then(|| WatermarkFeed::new(spec.capacity, 1, nbhd_count));
    let provider = wfeed.as_ref().map(|f| SharedFeed::new(f, 0, 0..nbhd_count));
    let queue = SharedQueue::default();
    let supply = LiveSupply {
        queue: Rc::clone(&queue),
    };
    let plant = FaultingPlant::new(&mut topo, config, 0, nbhd_count);
    let driver = SessionDriver::new(supply, provider, plant, indexes, 0, config, segmenter, None);
    let mut engine = SerialOnline {
        driver,
        queue,
        ingress: Ingress::new(users, spec, config, segmenter, wfeed.as_ref()),
        epoch: 0,
    };

    let value = session(&mut engine)?;
    engine.drain()?;

    let SerialOnline { driver, .. } = engine;
    let (plant, indexes, counters) = driver.into_parts();
    let (_, degradation) = plant.into_parts();
    let days = spec.days.max(1);
    let warmup = config.warmup_days().min(days - 1);
    Ok((
        value,
        assemble_serial_report(&topo, &indexes, counters, days, warmup, degradation),
    ))
}

/// Runs the sharded online engine: per-neighborhood `ShardPlant`
/// drivers stepped round-robin in the calling thread (cooperative and
/// deterministic — the sharding buys isolation, not threads), merged
/// with the same fold as [`run_parallel`](super::run_parallel).
///
/// The report is byte-identical to [`serve_serial`]'s (and hence to the
/// offline replay's).
///
/// # Errors
///
/// As for [`serve_serial`].
pub fn serve_sharded<T>(
    spec: &OnlineSpec<'_>,
    config: &SimConfig,
    strategy: &dyn StrategyFactory,
    session: impl FnOnce(&mut dyn OnlineEngine) -> Result<T, SimError>,
) -> Result<(T, SimReport), SimError> {
    config.validate()?;
    spec.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let topo = build_topology_for(spec.user_count, config)?;
    let nbhd_count = topo.neighborhood_count();
    let users = UserMap::from_topology(&topo);
    let schedules = online_schedules(spec, &topo, config, &segmenter, strategy)?;
    let positions = topo.local_positions();

    let wfeed = wants_feed(strategy).then(|| WatermarkFeed::new(spec.capacity, 1, nbhd_count));
    let mut tasks = Vec::with_capacity(nbhd_count);
    for n in 0..nbhd_count {
        let index = build_index(n, &topo, config, &segmenter, schedules.window(n)?, strategy)?;
        let plant = FaultingPlant::new(
            ShardPlant::build(n, &topo, config, &positions)?,
            config,
            n as u32,
            1,
        );
        let queue = SharedQueue::default();
        let supply = LiveSupply {
            queue: Rc::clone(&queue),
        };
        // Every shard reads producer 0's watermark — publication is
        // central (at submit), so shards are never parked, and
        // `WatermarkFeed::finish` is idempotent across their drains.
        let provider = wfeed.as_ref().map(|f| SharedFeed::new(f, 0, n..n + 1));
        tasks.push(ShardTask {
            driver: SessionDriver::new(
                supply,
                provider,
                plant,
                vec![index],
                n as u32,
                config,
                segmenter,
                None,
            ),
            queue,
        });
    }
    let mut engine = ShardedOnline {
        tasks,
        ingress: Ingress::new(users, spec, config, segmenter, wfeed.as_ref()),
        epoch: 0,
    };

    let value = session(&mut engine)?;
    let outcomes = engine.drain_all()?;

    let days = spec.days.max(1);
    let warmup = config.warmup_days().min(days - 1);
    let report = merge_outcomes(outcomes.into_iter().map(Ok), days, warmup, nbhd_count)?;
    Ok((value, report))
}

fn online_schedules(
    spec: &OnlineSpec<'_>,
    topo: &cablevod_hfc::topology::Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    strategy: &dyn StrategyFactory,
) -> Result<ScheduleSupply, SimError> {
    match spec.schedule_records {
        Some(records) => build_schedules(records, spec.catalog, topo, config, segmenter, strategy),
        None if strategy.needs_schedule() => Err(SimError::Config {
            reason: "this strategy needs an offline access schedule; \
                     serve it from a replayed trace, not a live ingress"
                .into(),
        }),
        None => Ok(ScheduleSupply::none(topo.neighborhood_count())),
    }
}

/// The staging queue a [`LiveSupply`] drains: the ingress pushes, the
/// lifecycle pops. Single-threaded by construction (the decision tier is
/// stepped cooperatively), hence `Rc<RefCell<..>>`.
type SharedQueue = Rc<RefCell<VecDeque<PendingSession>>>;

/// A [`RecordSupply`] over a caller-fed queue. Publication and watermark
/// advancement happened at submit (see [`Ingress::admit`]), so peeking
/// never touches the feed and the driver never parks on the frontier.
struct LiveSupply {
    queue: SharedQueue,
}

impl<F: cablevod_cache::FeedProvider> RecordSupply<F> for LiveSupply {
    fn peek(&mut self, _feed: &mut Option<F>) -> Result<Option<(SimTime, u64)>, SimError> {
        Ok(self.queue.borrow().front().map(|p| (p.rec.start, p.gidx)))
    }

    fn take(&mut self) -> PendingSession {
        self.queue
            .borrow_mut()
            .pop_front()
            .expect("a session is staged")
    }
}

/// Shared ingress bookkeeping: context computation, feed publication,
/// capacity and monotonicity enforcement.
struct Ingress<'s> {
    users: UserMap,
    catalog: &'s ProgramCatalog,
    config: &'s SimConfig,
    segmenter: Segmenter,
    seg_len: u64,
    wfeed: Option<&'s WatermarkFeed>,
    capacity: u64,
    next_gidx: u64,
    last_start: Option<SimTime>,
    advanced: Option<SimTime>,
}

impl<'s> Ingress<'s> {
    fn new(
        users: UserMap,
        spec: &OnlineSpec<'s>,
        config: &'s SimConfig,
        segmenter: Segmenter,
        wfeed: Option<&'s WatermarkFeed>,
    ) -> Self {
        Ingress {
            users,
            catalog: spec.catalog,
            config,
            segmenter,
            seg_len: segmenter.segment_len().as_secs(),
            wfeed,
            capacity: spec.capacity,
            next_gidx: 0,
            last_start: None,
            advanced: None,
        }
    }

    /// Admits one submission: enforces the ordering contract, computes
    /// the session context, publishes its feed event and advances the
    /// producer watermark past it.
    fn admit(&mut self, rec: SessionRecord) -> Result<PendingSession, SimError> {
        if self.next_gidx >= self.capacity {
            return Err(SimError::Config {
                reason: format!(
                    "online session capacity exhausted ({} submitted)",
                    self.capacity
                ),
            });
        }
        if self.last_start.is_some_and(|last| rec.start < last) {
            return Err(SimError::Config {
                reason: "session start times must not decrease across submissions".into(),
            });
        }
        if self.advanced.is_some_and(|h| rec.start <= h) {
            return Err(SimError::Config {
                reason: "session starts at or before the advanced horizon cannot be \
                         interleaved; stamp arrivals after the last advance"
                    .into(),
            });
        }
        let ctx = session_ctx(&rec, self.catalog, &self.users, self.seg_len)?;
        let gidx = self.next_gidx;
        if let Some(feed) = self.wfeed {
            feed.publish(gidx, feed_event(&rec, &ctx, self.config, &self.segmenter));
            feed.advance(0, gidx + 1);
        }
        self.next_gidx += 1;
        self.last_start = Some(rec.start);
        Ok(PendingSession { gidx, rec, ctx })
    }

    fn note_advance(&mut self, now: SimTime) -> Result<(), SimError> {
        if self.advanced.is_some_and(|h| now < h) {
            return Err(SimError::Config {
                reason: "advance horizons must not regress".into(),
            });
        }
        self.advanced = Some(now);
        Ok(())
    }
}

/// The serial online engine: one [`SessionDriver`] over the whole plant.
struct SerialOnline<'s> {
    driver: SessionDriver<
        's,
        FaultingPlant<&'s mut cablevod_hfc::topology::Topology>,
        SharedFeed<'s>,
        LiveSupply,
    >,
    queue: SharedQueue,
    ingress: Ingress<'s>,
    epoch: u64,
}

impl SerialOnline<'_> {
    fn drain(&mut self) -> Result<(), SimError> {
        loop {
            match self.driver.step_until(None)? {
                Step::Done => return Ok(()),
                Step::Blocked { .. } => {
                    debug_assert!(false, "a live supply's frontier is advanced at submit");
                    std::thread::yield_now();
                }
                Step::Horizon { .. } => unreachable!("unbounded steps never park on a horizon"),
            }
        }
    }
}

impl OnlineEngine for SerialOnline<'_> {
    fn submit(&mut self, rec: SessionRecord) -> Result<u64, SimError> {
        let pending = self.ingress.admit(rec)?;
        let gidx = pending.gidx;
        self.queue.borrow_mut().push_back(pending);
        Ok(gidx)
    }

    fn advance_to(&mut self, now: SimTime) -> Result<bool, SimError> {
        self.ingress.note_advance(now)?;
        match self.driver.step_until(Some(now))? {
            Step::Horizon { progressed } | Step::Blocked { progressed } => {
                if progressed {
                    self.epoch += 1;
                }
                Ok(progressed)
            }
            Step::Done => unreachable!("bounded steps never finish the run"),
        }
    }

    fn lookup(&self, nbhd: u32, program: ProgramId) -> Result<OnlinePlacement, SimError> {
        let index = self
            .driver
            .indexes()
            .get(nbhd as usize)
            .ok_or_else(|| SimError::Config {
                reason: format!("unknown neighborhood {nbhd}"),
            })?;
        Ok(OnlinePlacement::read(index, program))
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn submitted(&self) -> u64 {
        self.ingress.next_gidx
    }

    fn neighborhoods(&self) -> usize {
        self.driver.indexes().len()
    }
}

/// One neighborhood's online shard: its driver and the queue its
/// [`LiveSupply`] drains.
struct ShardTask<'s> {
    driver: SessionDriver<'s, FaultingPlant<ShardPlant<'s>>, SharedFeed<'s>, LiveSupply>,
    queue: SharedQueue,
}

/// The sharded online engine: per-neighborhood drivers stepped
/// round-robin, merged after drain.
struct ShardedOnline<'s> {
    tasks: Vec<ShardTask<'s>>,
    ingress: Ingress<'s>,
    epoch: u64,
}

impl ShardedOnline<'_> {
    fn drain_all(self) -> Result<Vec<ShardOutcome>, SimError> {
        let mut outcomes = Vec::with_capacity(self.tasks.len());
        for mut task in self.tasks {
            loop {
                match task.driver.step_until(None)? {
                    Step::Done => break,
                    Step::Blocked { .. } => {
                        debug_assert!(false, "a live supply's frontier is advanced at submit");
                        std::thread::yield_now();
                    }
                    Step::Horizon { .. } => {
                        unreachable!("unbounded steps never park on a horizon")
                    }
                }
            }
            outcomes.push(ShardOutcome::from_driver(task.driver));
        }
        Ok(outcomes)
    }
}

impl OnlineEngine for ShardedOnline<'_> {
    fn submit(&mut self, rec: SessionRecord) -> Result<u64, SimError> {
        let pending = self.ingress.admit(rec)?;
        let gidx = pending.gidx;
        self.tasks[pending.ctx.nbhd as usize]
            .queue
            .borrow_mut()
            .push_back(pending);
        Ok(gidx)
    }

    fn advance_to(&mut self, now: SimTime) -> Result<bool, SimError> {
        self.ingress.note_advance(now)?;
        let mut any = false;
        for task in &mut self.tasks {
            match task.driver.step_until(Some(now))? {
                Step::Horizon { progressed } | Step::Blocked { progressed } => any |= progressed,
                Step::Done => unreachable!("bounded steps never finish the run"),
            }
        }
        if any {
            self.epoch += 1;
        }
        Ok(any)
    }

    fn lookup(&self, nbhd: u32, program: ProgramId) -> Result<OnlinePlacement, SimError> {
        let task = self
            .tasks
            .get(nbhd as usize)
            .ok_or_else(|| SimError::Config {
                reason: format!("unknown neighborhood {nbhd}"),
            })?;
        Ok(OnlinePlacement::read(&task.driver.indexes()[0], program))
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn submitted(&self) -> u64 {
        self.ingress.next_gidx
    }

    fn neighborhoods(&self) -> usize {
        self.tasks.len()
    }
}
