//! Report assembly: turning a completed run's meters and counters into a
//! [`SimReport`], identically whichever driver produced them.

use cablevod_cache::{IndexServer, IndexStats};
use cablevod_hfc::meter::{RateMeter, RateStats, PEAK_END_HOUR, PEAK_START_HOUR};
use cablevod_hfc::topology::Topology;

use super::lifecycle::EngineCounters;
use super::shard::ShardOutcome;
use crate::error::SimError;
use crate::report::{DegradationReport, NeighborhoodDegradation, SimReport};

/// Assembles the serial report from the whole-plant topology and indexes.
pub(super) fn assemble_serial_report(
    topo: &Topology,
    indexes: &[IndexServer],
    counters: EngineCounters,
    days: u64,
    warmup: u64,
    degradation: Option<DegradationReport>,
) -> SimReport {
    let server_peak = topo.server().peak_stats(warmup, days);
    let server_hourly = topo.server().meter().hourly_profile();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(topo.neighborhood_count());
    for nbhd in topo.neighborhoods() {
        let stats = nbhd.coax().peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(nbhd.coax().meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
    }
    let mut cache = IndexStats::default();
    for index in indexes {
        cache += *index.stats();
    }
    SimReport {
        server_peak,
        server_total: topo.server().total(),
        server_hourly,
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions: counters.sessions,
        segment_requests: counters.segment_requests,
        viewer_overcommits: counters.viewer_overcommits,
        degradation,
        measured_from_day: warmup,
        measured_to_day: days,
    }
}

/// Merges shard outcomes, in neighborhood order, into the report the
/// serial engine would produce. Bit-exact: the server meter folds with
/// [`RateMeter::merge`] (commutative bucket accounting), cache counters
/// fold with `IndexStats + IndexStats`, and coax statistics are collected
/// in neighborhood order.
pub(super) fn merge_outcomes(
    outcomes: impl IntoIterator<Item = Result<ShardOutcome, SimError>>,
    days: u64,
    warmup: u64,
    nbhd_count: usize,
) -> Result<SimReport, SimError> {
    let mut server = RateMeter::hourly();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(nbhd_count);
    let mut cache = IndexStats::default();
    let mut counters = EngineCounters::default();
    // Shards agree on whether admission control ran (it is a pure function
    // of the shared config), so this is `Some` for all shards or none.
    let mut degradation: Option<(Vec<NeighborhoodDegradation>, Vec<u64>)> = None;
    for outcome in outcomes {
        let shard = outcome?;
        server.merge(&shard.server);
        if let Some(deg) = shard.degradation {
            let (nbhds, hist) = degradation.get_or_insert_with(|| (Vec::new(), Vec::new()));
            nbhds.extend(deg.per_neighborhood);
            if hist.len() < deg.retry_histogram.len() {
                hist.resize(deg.retry_histogram.len(), 0);
            }
            for (slot, count) in hist.iter_mut().zip(&deg.retry_histogram) {
                *slot += count;
            }
        }
        let stats = shard.coax.peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(shard.coax.meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
        cache += shard.stats;
        counters.absorb(shard.counters);
    }
    Ok(SimReport {
        server_peak: server.peak_stats(warmup, days),
        server_total: server.total(),
        server_hourly: server.hourly_profile(),
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions: counters.sessions,
        segment_requests: counters.segment_requests,
        viewer_overcommits: counters.viewer_overcommits,
        degradation: degradation.map(|(nbhds, hist)| DegradationReport::from_parts(nbhds, hist)),
        measured_from_day: warmup,
        measured_to_day: days,
    })
}
