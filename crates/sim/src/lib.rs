//! # cablevod-sim — the trace-driven discrete-event simulator
//!
//! Reimplements the evaluation machinery of §V of *"Deploying
//! Video-on-Demand Services on Cable Networks"*, behind **one front
//! door**:
//!
//! * [`Simulation`] — the builder every run goes through:
//!   `Simulation::over(source).config(cfg).threads(n).run()` composes the
//!   serial or sharded driver over a resident or streaming
//!   [`TraceSource`](cablevod_trace::source::TraceSource) and returns a
//!   [`RunOutcome`] — the measured [`SimReport`] plus [`simulation::
//!   RunTelemetry`] (wall time, trace decode work, peak RSS). Out-of-tree
//!   cache strategies register on the builder by name through the open
//!   [`StrategyFactory`](cablevod_cache::StrategyFactory) /
//!   [`StrategyRegistry`](cablevod_cache::StrategyRegistry) interface;
//! * [`Scenario`] — a serializable description of a whole experiment
//!   (trace source, base config, series/point sweep axes, thread policy)
//!   with a generic executor; spec files round-trip through
//!   [`Scenario::to_spec_string`] and drive the `cablevod-scenario`
//!   binary end-to-end;
//! * [`engine`] — the discrete-event core behind the facade: session
//!   records drive segment-granularity requests against per-neighborhood
//!   cooperative caches with exact byte accounting; [`engine::run`] /
//!   [`engine::run_parallel`] remain as thin direct entry points, and the
//!   builder produces **bit-identical** reports to them (property-tested);
//! * [`config`] / [`report`] — the swept parameters and measured results;
//! * [`baseline`] — the no-cache centralized service and the
//!   headend-cache equivalence transform;
//! * [`multicast`] — the §IV-A "why not multicast" bounds;
//! * [`runner`] — the parameter-sweep pool ([`run_sweep`]).
//!
//! # Examples
//!
//! ```
//! use cablevod_sim::{Scenario, Simulation, SimConfig, SourceSpec};
//! use cablevod_trace::synth::{generate, SynthConfig};
//!
//! let synth = SynthConfig { users: 300, programs: 60, days: 3,
//!     ..SynthConfig::smoke_test() };
//! let config = SimConfig::paper_default()
//!     .with_neighborhood_size(100)
//!     .with_warmup_days(1);
//!
//! // One run through the front door, with telemetry:
//! let trace = generate(&synth);
//! let outcome = Simulation::over(&trace).config(config.clone()).run()?;
//! println!("peak server load: {} in {:?}",
//!     outcome.report.server_peak.mean, outcome.telemetry.wall);
//!
//! // The same run as a declarative, serializable scenario:
//! let scenario = Scenario::new("quickstart", SourceSpec::Synth(synth), config);
//! let spec_text = scenario.to_spec_string()?;            // runnable by cablevod-scenario
//! assert_eq!(Scenario::from_spec_str(&spec_text)?, scenario);
//! assert_eq!(scenario.execute()?[0].report(), &outcome.report);
//! # Ok::<(), cablevod_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod error;
pub mod multicast;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod simulation;

pub use config::SimConfig;
pub use engine::{run, run_parallel};
pub use error::SimError;
pub use multicast::MulticastStats;
pub use report::SimReport;
pub use runner::run_sweep;
pub use scenario::{
    AxisPoint, ConfigPatch, OwnedSource, Scenario, ScenarioOutcome, SourceSpec, StrategyRef,
};
pub use simulation::{peak_rss_kb, RunOutcome, RunTelemetry, Simulation, ThreadPolicy};
