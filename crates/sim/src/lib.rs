//! # cablevod-sim — the trace-driven discrete-event simulator
//!
//! Reimplements the evaluation machinery of §V of *"Deploying
//! Video-on-Demand Services on Cable Networks"*:
//!
//! * [`engine`] — the discrete-event simulation: session records drive
//!   segment-granularity requests against per-neighborhood cooperative
//!   caches, with exact byte accounting on the server, fiber and coax;
//!   [`engine::run`] is the serial reference path, [`engine::run_parallel`]
//!   the sharded per-neighborhood path with bit-identical reports;
//! * [`config`] — the swept parameters (neighborhood size, per-peer
//!   storage, strategy, slots, segment length, placement, replication);
//! * [`report`] — measured results (peak server rate with 5 %/95 %
//!   quantiles, coax statistics, hit/miss breakdown);
//! * [`baseline`] — the no-cache centralized service and the
//!   headend-cache equivalence transform;
//! * [`multicast`] — the §IV-A "why not multicast" bounds;
//! * [`runner`] — parallel parameter sweeps.
//!
//! # Examples
//!
//! ```
//! use cablevod_sim::{run, SimConfig};
//! use cablevod_trace::synth::{generate, SynthConfig};
//!
//! let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
//!     ..SynthConfig::smoke_test() });
//! let config = SimConfig::paper_default()
//!     .with_neighborhood_size(100)
//!     .with_warmup_days(1);
//! let report = run(&trace, &config)?;
//! println!("peak server load: {}", report.server_peak.mean);
//! # Ok::<(), cablevod_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod error;
pub mod multicast;
pub mod report;
pub mod runner;

pub use config::SimConfig;
pub use engine::{run, run_parallel};
pub use error::SimError;
pub use multicast::MulticastStats;
pub use report::SimReport;
pub use runner::{run_sweep, run_sweep_traces};
