//! # cablevod-sim — the trace-driven discrete-event simulator
//!
//! Reimplements the evaluation machinery of §V of *"Deploying
//! Video-on-Demand Services on Cable Networks"*, behind **one front
//! door**:
//!
//! * [`Simulation`] — the builder every run goes through:
//!   `Simulation::over(source).config(cfg).threads(n).run()` composes the
//!   serial or sharded driver over a resident or streaming
//!   [`TraceSource`](cablevod_trace::source::TraceSource) and returns a
//!   [`RunOutcome`] — the measured [`SimReport`] plus [`simulation::
//!   RunTelemetry`] (wall time, trace decode work, peak RSS). Out-of-tree
//!   cache strategies register on the builder by name through the open
//!   [`StrategyFactory`](cablevod_cache::StrategyFactory) /
//!   [`StrategyRegistry`](cablevod_cache::StrategyRegistry) interface;
//! * [`Scenario`] — a serializable description of a whole experiment
//!   (trace source, base config, series/point sweep axes, thread policy)
//!   with a generic executor; spec files round-trip through
//!   [`Scenario::to_spec_string`] and drive the `cablevod-scenario`
//!   binary end-to-end. [`Scenario::execute_resilient`] is the
//!   crash-safe executor: per-cell `catch_unwind` isolation, bounded
//!   retry, per-attempt timeouts, and a CRC-framed checkpoint journal
//!   ([`CheckpointJournal`]) that lets a killed grid resume to a
//!   byte-identical final report (see the
//!   [`scenario`] module's "Crash safety & resume" section);
//! * [`engine`] — the discrete-event core behind the facade: session
//!   records drive segment-granularity requests against per-neighborhood
//!   cooperative caches with exact byte accounting; [`engine::run`] /
//!   [`engine::run_parallel`] remain as thin direct entry points, and the
//!   builder produces **bit-identical** reports to them (property-tested);
//! * [`config`] / [`report`] — the swept parameters and measured results;
//! * [`baseline`] — the no-cache centralized service and the
//!   headend-cache equivalence transform;
//! * [`multicast`] — the §IV-A "why not multicast" bounds;
//! * [`runner`] — the parameter-sweep pool ([`run_sweep`]).
//!
//! # Fault model
//!
//! The paper's evaluation assumes a perfect plant; this crate can also
//! degrade it deterministically. A [`FaultPlan`] is a set of timed
//! [`FaultEvent`]s — segment/fiber-node **outages** and coax capacity
//! **derates** (a remaining-capacity permille), each scoped to one
//! neighborhood or plant-wide, active over a half-open `[start, end)`
//! window. Plans are normalized at construction (events sorted by a total
//! key), so declaration order never matters, and [`FaultPlan::seeded`]
//! expands a seed into a reproducible random plan; the same plan replayed
//! serial vs. sharded and resident vs. streaming yields **bit-identical**
//! reports, degradation section included, because every fault decision is
//! a pure function of per-neighborhood state at event timestamps.
//!
//! What a refused admission *does* depends on [`AdmissionMode`]:
//!
//! * **Counting** (default) — the refusal-worthy start or interruption is
//!   tallied in [`SimReport::degradation`] but the session proceeds
//!   exactly as on a healthy plant, so all pre-fault figures stay
//!   bit-identical. With an empty plan the degradation section is `None`
//!   and reports are byte-for-byte the same as before faults existed.
//! * **Enforcing** — a session that hits an outage or an exhausted
//!   channel budget is refused: the set-top box retries with bounded
//!   exponential backoff ([`RetryPolicy`]) and is **blocked** when
//!   retries run out; sessions in flight when their neighborhood's
//!   segment goes down are **interrupted** (dropped at the next segment
//!   boundary). Popularity stays request-driven: refused sessions still
//!   count as demand at their original request time.
//!
//! The consequences land in [`DegradationReport`]: blocked/interrupted
//! totals, a retries-before-admission histogram, and per-neighborhood
//! outage seconds plus time-to-recover (lag from each outage's end to the
//! first admitted session).
//!
//! # Examples
//!
//! ```
//! use cablevod_sim::{Scenario, Simulation, SimConfig, SourceSpec};
//! use cablevod_trace::synth::{generate, SynthConfig};
//!
//! let synth = SynthConfig { users: 300, programs: 60, days: 3,
//!     ..SynthConfig::smoke_test() };
//! let config = SimConfig::paper_default()
//!     .with_neighborhood_size(100)
//!     .with_warmup_days(1);
//!
//! // One run through the front door, with telemetry:
//! let trace = generate(&synth);
//! let outcome = Simulation::over(&trace).config(config.clone()).run()?;
//! println!("peak server load: {} in {:?}",
//!     outcome.report.server_peak.mean, outcome.telemetry.wall);
//!
//! // The same run as a declarative, serializable scenario:
//! let scenario = Scenario::new("quickstart", SourceSpec::Synth(synth), config);
//! let spec_text = scenario.to_spec_string()?;            // runnable by cablevod-scenario
//! assert_eq!(Scenario::from_spec_str(&spec_text)?, scenario);
//! assert_eq!(scenario.execute()?[0].report(), &outcome.report);
//! # Ok::<(), cablevod_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod engine;
pub mod error;
pub mod multicast;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod simulation;

pub use cablevod_hfc::fault::{FaultEvent, FaultKind, FaultPlan, FaultTimeline};
pub use config::{AdmissionMode, RetryPolicy, SimConfig};
pub use engine::online::{serve_serial, serve_sharded, OnlineEngine, OnlinePlacement, OnlineSpec};
pub use engine::{run, run_parallel};
pub use error::SimError;
pub use multicast::MulticastStats;
pub use report::{DegradationReport, NeighborhoodDegradation, SimReport};
pub use runner::run_sweep;
pub use scenario::{
    report_from_json_str, report_to_json_string, AxisPoint, CellKey, CellOutcome, CellRecord,
    CellResult, CheckpointJournal, ConfigPatch, GridOutcome, JobRetry, JournalHeader, OwnedSource,
    ResilienceOptions, Scenario, ScenarioOutcome, SourceSpec, StrategyRef,
};
pub use simulation::{peak_rss_kb, RunOutcome, RunTelemetry, Simulation, ThreadPolicy};
