//! Non-cooperative baselines.
//!
//! * [`no_cache_peak`] / [`no_cache_hourly`] — the centralized service the
//!   paper draws as the 17 Gb/s reference line in Fig 15: every session is
//!   served by the central server. Computed analytically from the trace
//!   (no simulation needed — there is no contention to model).
//! * [`headend_config`] — §VI-B's "more centralized approach": a proxy
//!   cache of the same total capacity located *at the headend*. On a
//!   broadcast coax this is behaviorally the peer cache without the
//!   per-STB stream-slot limit, so it is expressed as a config transform
//!   and run through the same engine (experiment E-M2).

use cablevod_hfc::meter::{RateMeter, RateStats};
use cablevod_hfc::units::BitRate;
use cablevod_trace::record::Trace;

use crate::config::SimConfig;

/// Offered load per hour of day when every session is served centrally.
pub fn no_cache_hourly(trace: &Trace, rate: BitRate) -> [BitRate; 24] {
    demand_meter(trace, rate).hourly_profile()
}

/// Peak-window (7–11 PM) statistics of the no-cache server load over the
/// measured day range — the paper's "with no cache, central servers must
/// support 17 Gb/s".
pub fn no_cache_peak(trace: &Trace, rate: BitRate, from_day: u64, to_day: u64) -> RateStats {
    demand_meter(trace, rate).peak_stats(from_day, to_day)
}

fn demand_meter(trace: &Trace, rate: BitRate) -> RateMeter {
    let mut meter = RateMeter::hourly();
    for r in trace.iter() {
        let length = trace.catalog().length(r.program).unwrap_or(r.duration);
        let watched = r.watched(length);
        meter.record(r.start, r.start + watched, rate * watched);
    }
    meter
}

/// Transforms a peer-cache configuration into its headend-cache
/// equivalent: identical total capacity, no per-peer stream-slot limits
/// (a headend server is not slot-bound), same strategy.
///
/// The difference between `run(trace, config)` and
/// `run(trace, headend_config(config))` isolates exactly the cost of the
/// paper's 2-streams-per-STB constraint; coax load is identical by the
/// broadcast argument of §VI-B.
pub fn headend_config(config: &SimConfig) -> SimConfig {
    config.clone().with_stream_slots(u8::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use cablevod_hfc::units::DataSize;
    use cablevod_trace::synth::{generate, SynthConfig};

    fn small_trace() -> Trace {
        generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            ..SynthConfig::smoke_test()
        })
    }

    #[test]
    fn no_cache_peak_matches_engine_no_cache_run() {
        let trace = small_trace();
        let analytic = no_cache_peak(&trace, BitRate::STREAM_MPEG2_SD, 2, trace.days());
        let config = SimConfig::paper_default()
            .with_neighborhood_size(200)
            .with_strategy(cablevod_cache::StrategySpec::NoCache)
            .with_warmup_days(2);
        let simulated = run(&trace, &config).expect("runs");
        assert_eq!(analytic.mean, simulated.server_peak.mean);
        assert_eq!(analytic.q95, simulated.server_peak.q95);
    }

    #[test]
    fn hourly_demand_peaks_in_evening() {
        let trace = small_trace();
        let profile = no_cache_hourly(&trace, BitRate::STREAM_MPEG2_SD);
        let peak_hour = (0..24)
            .max_by_key(|&h| profile[h].as_bps())
            .expect("24 hours");
        assert!((18..=22).contains(&peak_hour), "peak at {peak_hour}");
    }

    #[test]
    fn headend_cache_never_does_worse_than_peer_cache() {
        let trace = small_trace();
        let peer_cfg = SimConfig::paper_default()
            .with_neighborhood_size(200)
            .with_per_peer_storage(DataSize::from_gigabytes(2))
            .with_warmup_days(2);
        let peer = run(&trace, &peer_cfg).expect("runs");
        let headend = run(&trace, &headend_config(&peer_cfg)).expect("runs");
        assert!(
            headend.server_total <= peer.server_total,
            "removing the slot limit cannot increase misses"
        );
        assert_eq!(headend.cache.miss_peer_busy, 0);
        // Broadcast coax: identical traffic either way.
        assert_eq!(headend.coax_peak.mean, peer.coax_peak.mean);
    }
}
