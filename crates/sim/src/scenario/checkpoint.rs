//! The crash-safety checkpoint journal behind resumable scenario runs.
//!
//! A journal is a plain-text JSONL file: one CRC-framed record per line.
//! Line 1 is the **header** (scenario name, spec fingerprint, grid cell
//! count); every following line is one completed **cell** — the
//! point-major `(point, series)` identity, its axis labels, the resolved
//! strategy name and worker count, and the full integer-exact
//! [`SimReport`]. Failed or skipped cells are never journaled, so a
//! resumed run retries exactly the work that did not finish.
//!
//! # Record framing and CRC coverage
//!
//! ```text
//! CVJ1 <crc32, 8 lowercase hex digits> <compact JSON body>\n
//! ```
//!
//! The CRC-32 (the same IEEE polynomial as the columnar trace format,
//! [`cablevod_trace::checksum`]) covers exactly the JSON body bytes; the
//! magic and the checksum field protect themselves by failing the frame
//! parse. A record is *valid* only when the magic, the checksum and the
//! JSON all check out — any bit flip inside a line is detected, because
//! CRC-32 catches all single-bit (and burst ≤ 32-bit) errors.
//!
//! # The torn-tail rule
//!
//! Writers go through write-temp-then-rename ([`CheckpointJournal`]
//! rewrites the whole file per append — journals are a few KB), so on a
//! POSIX filesystem the journal is always either absent or entirely
//! valid. Readers still tolerate a *torn tail* for belt-and-braces crash
//! safety: if every line after the last valid record fails to parse, the
//! tail is **dropped, never trusted**, and the journal resumes from the
//! last valid record. A corrupt line *followed by a valid record* is not
//! a tail — that is mid-journal corruption, and [`CheckpointJournal::
//! load`] refuses the whole file rather than silently skipping a cell.
//!
//! # Why a hand-written codec
//!
//! The vendored `serde` is a marker-only stand-in (no wire format), and
//! the report must replay **byte-identically**, so the codec here is a
//! ~150-line integer-exact JSON round-trip: every [`SimReport`] field is
//! an unsigned integer (bit rates in bps, sizes in bits), floats never
//! enter the journal, and `encode(decode(x)) == x` exactly.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use cablevod_cache::IndexStats;
use cablevod_hfc::meter::RateStats;
use cablevod_hfc::units::{BitRate, DataSize};
use cablevod_trace::checksum::crc32;

use crate::error::SimError;
use crate::report::{DegradationReport, NeighborhoodDegradation, SimReport};

/// The stable identity of one grid cell: indices into the scenario's
/// point-major cross product (see the module docs' cell-identity
/// contract). Implicit axes count as one entry at index 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Index on the point (x) axis.
    pub point: u32,
    /// Index on the series axis.
    pub series: u32,
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {} / series {}", self.point, self.series)
    }
}

/// The journal's first record: which scenario wrote it, and how big the
/// grid is. Resume refuses a journal whose header does not match the
/// scenario being resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// The scenario name.
    pub scenario: String,
    /// [`Scenario::fingerprint`](super::Scenario::fingerprint) of the
    /// scenario that wrote the journal.
    pub fingerprint: u32,
    /// Total cells in the grid (`points × series`, implicit axes = 1).
    pub cells: u32,
}

/// One completed cell: identity, labels, resolved run parameters, and
/// the full report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Point-major grid identity.
    pub key: CellKey,
    /// Series-axis label (checked against the scenario on resume).
    pub series: String,
    /// Point-axis label (checked against the scenario on resume).
    pub point: String,
    /// Resolved strategy name (per
    /// [`StrategyFactory::name`](cablevod_cache::StrategyFactory::name)
    /// at run time).
    pub strategy: String,
    /// Resolved engine worker count of the original run.
    pub threads: u64,
    /// The cell's measured report, integer-exact.
    pub report: SimReport,
}

/// An append-only journal of completed cells (see the module docs).
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    header: JournalHeader,
    cells: Vec<CellRecord>,
}

impl CheckpointJournal {
    /// Starts a fresh journal at `path`, writing the header through the
    /// temp-then-rename discipline. An existing file is replaced.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`SimError::Config`].
    pub fn create(path: impl Into<PathBuf>, header: JournalHeader) -> Result<Self, SimError> {
        let journal = CheckpointJournal {
            path: path.into(),
            header,
            cells: Vec::new(),
        };
        journal.persist()?;
        Ok(journal)
    }

    /// Loads a journal, applying the torn-tail rule (module docs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for I/O failures, a missing or
    /// corrupt header, mid-journal corruption (an invalid line followed
    /// by a valid record), or duplicate cell records.
    pub fn load(path: impl Into<PathBuf>) -> Result<Self, SimError> {
        let path = path.into();
        let err = |reason: String| SimError::Config {
            reason: format!("checkpoint journal {}: {reason}", path.display()),
        };
        let bytes = std::fs::read(&path).map_err(|e| err(format!("cannot read: {e}")))?;
        let lines: Vec<&[u8]> = bytes
            .split(|&b| b == b'\n')
            .filter(|line| !line.iter().all(u8::is_ascii_whitespace))
            .collect();
        let mut records = Vec::with_capacity(lines.len());
        let mut torn_at = None;
        for (i, line) in lines.iter().enumerate() {
            match unframe(line).and_then(|json| parse_json(json).ok()) {
                Some(value) => {
                    if torn_at.is_some() {
                        return Err(err(format!(
                            "record {} is corrupt but later records are valid — \
                             mid-journal corruption, refusing to skip cells",
                            torn_at.unwrap_or(0) + 1
                        )));
                    }
                    records.push(value);
                }
                // Candidate torn tail: tolerated only if nothing valid
                // follows.
                None => torn_at = torn_at.or(Some(i)),
            }
        }
        let mut records = records.into_iter();
        let header = match records.next() {
            Some(value) => header_from_json(&value).map_err(|e| err(format!("bad header: {e}")))?,
            None => {
                return Err(err(
                    "no valid header record (the file is corrupt — it was not \
                     written by the temp-then-rename journal writer)"
                        .into(),
                ))
            }
        };
        let mut cells = Vec::new();
        let mut seen = BTreeSet::new();
        for (i, value) in records.enumerate() {
            let record = cell_from_json(&value)
                .map_err(|e| err(format!("bad cell record {}: {e}", i + 1)))?;
            if !seen.insert(record.key) {
                return Err(err(format!("duplicate record for cell ({})", record.key)));
            }
            cells.push(record);
        }
        Ok(CheckpointJournal {
            path,
            header,
            cells,
        })
    }

    /// The journal's header.
    pub fn header(&self) -> &JournalHeader {
        &self.header
    }

    /// Completed cells, in append order.
    pub fn cells(&self) -> &[CellRecord] {
        &self.cells
    }

    /// The record for `key`, if that cell completed.
    pub fn cell(&self, key: CellKey) -> Option<&CellRecord> {
        self.cells.iter().find(|record| record.key == key)
    }

    /// Appends one completed cell and persists the journal (whole-file
    /// rewrite through temp-then-rename, so the on-disk journal is
    /// always either the pre- or the post-append state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for a duplicate cell or an I/O
    /// failure.
    pub fn append(&mut self, record: CellRecord) -> Result<(), SimError> {
        if self.cell(record.key).is_some() {
            return Err(SimError::Config {
                reason: format!(
                    "checkpoint journal {}: cell ({}) journaled twice",
                    self.path.display(),
                    record.key
                ),
            });
        }
        self.cells.push(record);
        self.persist()
    }

    /// Serializes every record and atomically replaces the file.
    fn persist(&self) -> Result<(), SimError> {
        let err = |reason: String| SimError::Config {
            reason: format!("checkpoint journal {}: {reason}", self.path.display()),
        };
        let mut text = frame(&write_json(&header_json(&self.header)));
        for record in &self.cells {
            text.push_str(&frame(&write_json(&cell_json(record))));
        }
        let mut tmp = self.path.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        write_sync(&tmp, text.as_bytes()).map_err(|e| err(format!("cannot write: {e}")))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            err(format!("cannot rename {} into place: {e}", tmp.display()))
        })
    }
}

/// Writes `bytes` and flushes them to disk before returning, so the
/// subsequent rename publishes a fully durable file.
fn write_sync(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = std::fs::File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

/// Frames one record body as a journal line (module docs).
fn frame(json: &str) -> String {
    format!("CVJ1 {:08x} {json}\n", crc32(json.as_bytes()))
}

/// Validates one line's frame, returning the JSON body when the magic
/// and checksum hold.
fn unframe(line: &[u8]) -> Option<&[u8]> {
    let rest = line.strip_prefix(b"CVJ1 ")?;
    if rest.len() < 10 {
        return None;
    }
    let (crc_hex, body) = rest.split_at(8);
    let body = body.strip_prefix(b" ")?;
    let crc_hex = std::str::from_utf8(crc_hex).ok()?;
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(body) == expected).then_some(body)
}

// ---------------------------------------------------------------------
// Integer-exact JSON codec (see the module docs for why it exists)
// ---------------------------------------------------------------------

/// The value model: unsigned integers only — a journal never contains a
/// float, a negative number, or a boolean, so the codec round-trips
/// every report field exactly.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn write_json(value: &Json) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Num(n) => {
            let mut buf = [0u8; 20];
            let mut n = *n;
            let mut i = buf.len();
            loop {
                i -= 1;
                buf[i] = b'0' + (n % 10) as u8;
                n /= 10;
                if n == 0 {
                    break;
                }
            }
            out.push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
        }
        Json::Str(text) => {
            out.push('"');
            for c in text.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        use std::fmt::Write as _;
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(&Json::Str(key.clone()), out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

/// A recursive-descent parser over raw bytes (corrupt input may not be
/// UTF-8; nothing here panics on arbitrary bytes).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type ParseResult<T> = Result<T, String>;

fn parse_json(bytes: &[u8]) -> ParseResult<Json> {
    let mut parser = Parser { bytes, pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    Ok(value)
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> ParseResult<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> ParseResult<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at offset {}", self.pos))
                }
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("bad array at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("bad object at offset {}", self.pos)),
                    }
                }
            }
            Some(b'0'..=b'9') => {
                let start = self.pos;
                let mut n: u64 = 0;
                while let Some(digit @ b'0'..=b'9') = self.peek() {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(u64::from(digit - b'0')))
                        .ok_or_else(|| format!("number overflows u64 at offset {start}"))?;
                    self.pos += 1;
                }
                // Unsigned integers only — `.`/`e`/`-` never appear in a
                // valid journal, so a fraction is corruption, not data.
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return Err(format!("non-integer number at offset {start}"));
                }
                Ok(Json::Num(n))
            }
            _ => Err(format!("bad value at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> ParseResult<String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            let byte = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match byte {
                b'"' => break,
                b'\\' => {
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            self.pos += 4;
                            let c = char::from_u32(hex)
                                .ok_or_else(|| format!("bad codepoint {hex:#x}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => return Err(format!("bad escape {:?}", other as char)),
                    }
                }
                other => out.push(other),
            }
        }
        String::from_utf8(out).map_err(|_| "string is not UTF-8".to_string())
    }
}

// ---------------------------------------------------------------------
// Record <-> Json conversions
// ---------------------------------------------------------------------

fn get<'a>(fields: &'a [(String, Json)], key: &str) -> ParseResult<&'a Json> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn as_obj(value: &Json) -> ParseResult<&[(String, Json)]> {
    match value {
        Json::Obj(fields) => Ok(fields),
        _ => Err("expected an object".into()),
    }
}

fn as_arr(value: &Json) -> ParseResult<&[Json]> {
    match value {
        Json::Arr(items) => Ok(items),
        _ => Err("expected an array".into()),
    }
}

fn as_num(value: &Json) -> ParseResult<u64> {
    match value {
        Json::Num(n) => Ok(*n),
        _ => Err("expected an unsigned integer".into()),
    }
}

fn as_str(value: &Json) -> ParseResult<&str> {
    match value {
        Json::Str(text) => Ok(text),
        _ => Err("expected a string".into()),
    }
}

fn num_field(fields: &[(String, Json)], key: &str) -> ParseResult<u64> {
    as_num(get(fields, key)?)
}

fn header_json(header: &JournalHeader) -> Json {
    Json::Obj(vec![
        ("scenario".into(), Json::Str(header.scenario.clone())),
        (
            "fingerprint".into(),
            Json::Num(u64::from(header.fingerprint)),
        ),
        ("cells".into(), Json::Num(u64::from(header.cells))),
    ])
}

fn header_from_json(value: &Json) -> ParseResult<JournalHeader> {
    let fields = as_obj(value)?;
    let narrow = |n: u64| u32::try_from(n).map_err(|_| "field overflows u32".to_string());
    Ok(JournalHeader {
        scenario: as_str(get(fields, "scenario")?)?.to_string(),
        fingerprint: narrow(num_field(fields, "fingerprint")?)?,
        cells: narrow(num_field(fields, "cells")?)?,
    })
}

fn cell_json(record: &CellRecord) -> Json {
    Json::Obj(vec![
        (
            "cell".into(),
            Json::Arr(vec![
                Json::Num(u64::from(record.key.point)),
                Json::Num(u64::from(record.key.series)),
            ]),
        ),
        ("series".into(), Json::Str(record.series.clone())),
        ("point".into(), Json::Str(record.point.clone())),
        ("strategy".into(), Json::Str(record.strategy.clone())),
        ("threads".into(), Json::Num(record.threads)),
        ("report".into(), report_json(&record.report)),
    ])
}

fn cell_from_json(value: &Json) -> ParseResult<CellRecord> {
    let fields = as_obj(value)?;
    let key = as_arr(get(fields, "cell")?)?;
    if key.len() != 2 {
        return Err("cell key must be [point, series]".into());
    }
    let narrow = |n: u64| u32::try_from(n).map_err(|_| "cell index overflows u32".to_string());
    Ok(CellRecord {
        key: CellKey {
            point: narrow(as_num(&key[0])?)?,
            series: narrow(as_num(&key[1])?)?,
        },
        series: as_str(get(fields, "series")?)?.to_string(),
        point: as_str(get(fields, "point")?)?.to_string(),
        strategy: as_str(get(fields, "strategy")?)?.to_string(),
        threads: num_field(fields, "threads")?,
        report: report_from_json(get(fields, "report")?)?,
    })
}

fn rate_stats_json(stats: &RateStats) -> Json {
    Json::Arr(vec![
        Json::Num(stats.mean.as_bps()),
        Json::Num(stats.q05.as_bps()),
        Json::Num(stats.q95.as_bps()),
        Json::Num(stats.max.as_bps()),
        Json::Num(stats.samples as u64),
    ])
}

fn rate_stats_from_json(value: &Json) -> ParseResult<RateStats> {
    let items = as_arr(value)?;
    if items.len() != 5 {
        return Err("rate stats must be [mean, q05, q95, max, samples]".into());
    }
    Ok(RateStats {
        mean: BitRate::from_bps(as_num(&items[0])?),
        q05: BitRate::from_bps(as_num(&items[1])?),
        q95: BitRate::from_bps(as_num(&items[2])?),
        max: BitRate::from_bps(as_num(&items[3])?),
        samples: usize::try_from(as_num(&items[4])?)
            .map_err(|_| "sample count overflows usize".to_string())?,
    })
}

/// Seven-counter tuple, in declaration order.
fn nbhd_degradation_json(n: &NeighborhoodDegradation) -> Json {
    Json::Arr(vec![
        Json::Num(n.blocked_sessions),
        Json::Num(n.interrupted_sessions),
        Json::Num(n.retries),
        Json::Num(n.outage_secs),
        Json::Num(n.recoveries_measured),
        Json::Num(n.recovery_lag_total_secs),
        Json::Num(n.recovery_lag_max_secs),
    ])
}

fn nbhd_degradation_from_json(value: &Json) -> ParseResult<NeighborhoodDegradation> {
    let items = as_arr(value)?;
    if items.len() != 7 {
        return Err("neighborhood degradation must have 7 counters".into());
    }
    Ok(NeighborhoodDegradation {
        blocked_sessions: as_num(&items[0])?,
        interrupted_sessions: as_num(&items[1])?,
        retries: as_num(&items[2])?,
        outage_secs: as_num(&items[3])?,
        recoveries_measured: as_num(&items[4])?,
        recovery_lag_total_secs: as_num(&items[5])?,
        recovery_lag_max_secs: as_num(&items[6])?,
    })
}

fn degradation_json(report: &DegradationReport) -> Json {
    Json::Obj(vec![
        ("blocked".into(), Json::Num(report.blocked_sessions)),
        ("interrupted".into(), Json::Num(report.interrupted_sessions)),
        ("retries".into(), Json::Num(report.retries)),
        (
            "retry_histogram".into(),
            Json::Arr(
                report
                    .retry_histogram
                    .iter()
                    .map(|&n| Json::Num(n))
                    .collect(),
            ),
        ),
        (
            "per_neighborhood".into(),
            Json::Arr(
                report
                    .per_neighborhood
                    .iter()
                    .map(nbhd_degradation_json)
                    .collect(),
            ),
        ),
    ])
}

fn degradation_from_json(value: &Json) -> ParseResult<DegradationReport> {
    let fields = as_obj(value)?;
    Ok(DegradationReport {
        blocked_sessions: num_field(fields, "blocked")?,
        interrupted_sessions: num_field(fields, "interrupted")?,
        retries: num_field(fields, "retries")?,
        retry_histogram: as_arr(get(fields, "retry_histogram")?)?
            .iter()
            .map(as_num)
            .collect::<ParseResult<_>>()?,
        per_neighborhood: as_arr(get(fields, "per_neighborhood")?)?
            .iter()
            .map(nbhd_degradation_from_json)
            .collect::<ParseResult<_>>()?,
    })
}

fn index_stats_json(stats: &IndexStats) -> Json {
    Json::Arr(vec![
        Json::Num(stats.hits),
        Json::Num(stats.miss_uncached),
        Json::Num(stats.miss_not_materialized),
        Json::Num(stats.miss_peer_busy),
        Json::Num(stats.admissions),
        Json::Num(stats.evictions),
        Json::Num(stats.capture_fills),
        Json::Num(stats.delayed_hits),
        Json::Num(stats.inflight_misses),
    ])
}

fn index_stats_from_json(value: &Json) -> ParseResult<IndexStats> {
    let items = as_arr(value)?;
    if items.len() != 9 {
        return Err("index stats must have 9 counters".into());
    }
    Ok(IndexStats {
        hits: as_num(&items[0])?,
        miss_uncached: as_num(&items[1])?,
        miss_not_materialized: as_num(&items[2])?,
        miss_peer_busy: as_num(&items[3])?,
        admissions: as_num(&items[4])?,
        evictions: as_num(&items[5])?,
        capture_fills: as_num(&items[6])?,
        delayed_hits: as_num(&items[7])?,
        inflight_misses: as_num(&items[8])?,
    })
}

fn report_json(report: &SimReport) -> Json {
    Json::Obj(vec![
        ("server_peak".into(), rate_stats_json(&report.server_peak)),
        (
            "server_total_bits".into(),
            Json::Num(report.server_total.as_bits()),
        ),
        (
            "server_hourly_bps".into(),
            Json::Arr(
                report
                    .server_hourly
                    .iter()
                    .map(|rate| Json::Num(rate.as_bps()))
                    .collect(),
            ),
        ),
        ("coax_peak".into(), rate_stats_json(&report.coax_peak)),
        (
            "coax_per_neighborhood_bps".into(),
            Json::Arr(
                report
                    .coax_per_neighborhood
                    .iter()
                    .map(|rate| Json::Num(rate.as_bps()))
                    .collect(),
            ),
        ),
        ("cache".into(), index_stats_json(&report.cache)),
        ("sessions".into(), Json::Num(report.sessions)),
        (
            "segment_requests".into(),
            Json::Num(report.segment_requests),
        ),
        (
            "viewer_overcommits".into(),
            Json::Num(report.viewer_overcommits),
        ),
        (
            "degradation".into(),
            report
                .degradation
                .as_ref()
                .map_or(Json::Null, degradation_json),
        ),
        (
            "measured_from_day".into(),
            Json::Num(report.measured_from_day),
        ),
        ("measured_to_day".into(), Json::Num(report.measured_to_day)),
    ])
}

fn report_from_json(value: &Json) -> ParseResult<SimReport> {
    let fields = as_obj(value)?;
    let hourly = as_arr(get(fields, "server_hourly_bps")?)?;
    if hourly.len() != 24 {
        return Err("server_hourly_bps must have 24 entries".into());
    }
    let mut server_hourly = [BitRate::ZERO; 24];
    for (slot, value) in server_hourly.iter_mut().zip(hourly) {
        *slot = BitRate::from_bps(as_num(value)?);
    }
    Ok(SimReport {
        server_peak: rate_stats_from_json(get(fields, "server_peak")?)?,
        server_total: DataSize::from_bits(num_field(fields, "server_total_bits")?),
        server_hourly,
        coax_peak: rate_stats_from_json(get(fields, "coax_peak")?)?,
        coax_per_neighborhood: as_arr(get(fields, "coax_per_neighborhood_bps")?)?
            .iter()
            .map(|value| Ok(BitRate::from_bps(as_num(value)?)))
            .collect::<ParseResult<_>>()?,
        cache: index_stats_from_json(get(fields, "cache")?)?,
        sessions: num_field(fields, "sessions")?,
        segment_requests: num_field(fields, "segment_requests")?,
        viewer_overcommits: num_field(fields, "viewer_overcommits")?,
        degradation: match get(fields, "degradation")? {
            Json::Null => None,
            value => Some(degradation_from_json(value)?),
        },
        measured_from_day: num_field(fields, "measured_from_day")?,
        measured_to_day: num_field(fields, "measured_to_day")?,
    })
}

/// Serializes a report to one canonical JSON line — the same encoding the
/// checkpoint journal writes, so online (serve) and offline (journal)
/// accounting can be compared byte-for-byte.
#[must_use]
pub fn report_to_json_string(report: &SimReport) -> String {
    write_json(&report_json(report))
}

/// Parses a report back from [`report_to_json_string`]'s encoding.
///
/// # Errors
///
/// Returns [`SimError::Config`] when the text is not valid JSON or does
/// not have the report's shape.
pub fn report_from_json_str(text: &str) -> Result<SimReport, SimError> {
    let value = parse_json(text.as_bytes()).map_err(|reason| SimError::Config { reason })?;
    report_from_json(&value).map_err(|reason| SimError::Config { reason })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(salt: u64) -> SimReport {
        let rate = |n: u64| BitRate::from_bps(n.wrapping_mul(salt + 1));
        let stats = |base: u64| RateStats {
            mean: rate(base),
            q05: rate(base / 2),
            q95: rate(base * 2),
            max: rate(base * 3),
            samples: (base % 97) as usize,
        };
        let mut server_hourly = [BitRate::ZERO; 24];
        for (hour, slot) in server_hourly.iter_mut().enumerate() {
            *slot = rate(hour as u64 * 1000 + 1);
        }
        SimReport {
            server_peak: stats(1_000_000),
            server_total: DataSize::from_bits(salt * 12_345 + 8),
            server_hourly,
            coax_peak: stats(500_000),
            coax_per_neighborhood: (0..5).map(|n| rate(n * 77 + 3)).collect(),
            cache: IndexStats {
                hits: salt,
                miss_uncached: salt + 1,
                miss_not_materialized: salt + 2,
                miss_peer_busy: salt + 3,
                admissions: salt + 4,
                evictions: salt + 5,
                capture_fills: salt + 6,
                delayed_hits: salt + 7,
                inflight_misses: salt + 8,
            },
            sessions: salt * 100 + 7,
            segment_requests: salt * 1000 + 11,
            viewer_overcommits: salt % 13,
            degradation: salt.is_multiple_of(2).then(|| DegradationReport {
                blocked_sessions: salt,
                interrupted_sessions: salt + 1,
                retries: salt * 3,
                retry_histogram: vec![salt, salt / 2, 0, 1],
                per_neighborhood: (0..3)
                    .map(|n| NeighborhoodDegradation {
                        blocked_sessions: n + salt,
                        interrupted_sessions: n,
                        retries: n * 2,
                        outage_secs: n * 3600,
                        recoveries_measured: n % 2,
                        recovery_lag_total_secs: n * 5,
                        recovery_lag_max_secs: n * 4,
                    })
                    .collect(),
            }),
            measured_from_day: 14,
            measured_to_day: 28,
        }
    }

    fn record(point: u32, series: u32, salt: u64) -> CellRecord {
        CellRecord {
            key: CellKey { point, series },
            series: format!("series-{series}"),
            point: format!("point-{point}"),
            strategy: "LFU".into(),
            threads: 1,
            report: sample_report(salt),
        }
    }

    fn temp_journal(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("cvj_{tag}_{}_{n}.cvj", std::process::id()))
    }

    #[test]
    fn report_codec_round_trips_exactly() {
        for salt in [0, 1, 2, 7, u64::from(u32::MAX)] {
            let report = sample_report(salt);
            let decoded = report_from_json(&report_json(&report)).expect("decodes");
            assert_eq!(decoded, report, "salt {salt}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\u{1}f émoji \u{1F600}";
        let value = Json::Str(nasty.into());
        let text = write_json(&value);
        assert_eq!(parse_json(text.as_bytes()).expect("parses"), value);
    }

    #[test]
    fn parser_rejects_floats_and_negatives() {
        assert!(parse_json(b"1.5").is_err());
        assert!(parse_json(b"-3").is_err());
        assert!(parse_json(b"1e9").is_err());
        assert!(parse_json(b"18446744073709551616").is_err(), "u64 overflow");
        assert_eq!(
            parse_json(b"18446744073709551615").expect("u64::MAX parses"),
            Json::Num(u64::MAX)
        );
    }

    #[test]
    fn journal_appends_and_loads_back() {
        let path = temp_journal("roundtrip");
        let header = JournalHeader {
            scenario: "grid".into(),
            fingerprint: 0xDEAD_BEEF,
            cells: 4,
        };
        let mut journal = CheckpointJournal::create(&path, header.clone()).expect("creates");
        for (point, series, salt) in [(0, 0, 1), (0, 1, 2), (1, 0, 3)] {
            journal
                .append(record(point, series, salt))
                .expect("appends");
        }
        let loaded = CheckpointJournal::load(&path).expect("loads");
        assert_eq!(loaded.header(), &header);
        assert_eq!(loaded.cells(), journal.cells());
        assert_eq!(
            loaded
                .cell(CellKey {
                    point: 1,
                    series: 0
                })
                .map(|r| r.report.sessions),
            Some(sample_report(3).sessions)
        );
        assert!(loaded
            .cell(CellKey {
                point: 1,
                series: 1
            })
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_cells_are_refused() {
        let path = temp_journal("dup");
        let header = JournalHeader {
            scenario: "grid".into(),
            fingerprint: 1,
            cells: 2,
        };
        let mut journal = CheckpointJournal::create(&path, header).expect("creates");
        journal.append(record(0, 0, 1)).expect("first append");
        assert!(journal.append(record(0, 0, 2)).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_mid_journal_corruption_is_refused() {
        let path = temp_journal("tail");
        let header = JournalHeader {
            scenario: "grid".into(),
            fingerprint: 9,
            cells: 3,
        };
        let mut journal = CheckpointJournal::create(&path, header).expect("creates");
        journal.append(record(0, 0, 1)).expect("append");
        journal.append(record(0, 1, 2)).expect("append");
        let pristine = std::fs::read(&path).expect("read back");

        // Truncate inside the final record: the tail drops, the rest
        // survives.
        std::fs::write(&path, &pristine[..pristine.len() - 40]).expect("truncate");
        let loaded = CheckpointJournal::load(&path).expect("torn tail tolerated");
        assert_eq!(loaded.cells().len(), 1);
        assert_eq!(
            loaded.cells()[0].key,
            CellKey {
                point: 0,
                series: 0
            }
        );

        // Flip one bit inside the *first* cell record (a non-final line):
        // valid records follow, so the journal is refused outright.
        let header_len = pristine.iter().position(|&b| b == b'\n').expect("header") + 1;
        let mut flipped = pristine.clone();
        flipped[header_len + 20] ^= 0x04;
        std::fs::write(&path, &flipped).expect("write flipped");
        let err = CheckpointJournal::load(&path).expect_err("mid-journal corruption");
        assert!(err.to_string().contains("mid-journal"), "{err}");

        std::fs::remove_file(&path).ok();
    }
}
