//! Declarative experiment descriptions: [`Scenario`] specs and their
//! generic executor.
//!
//! A [`Scenario`] is data — a trace source ([`SourceSpec`]), a base
//! [`SimConfig`], two sweep axes ([`AxisPoint`]s for figure *series* and
//! *points*, each able to patch the config, switch the strategy, or even
//! swap the trace source), and a [`ThreadPolicy`]. One executor
//! ([`Scenario::execute`]) turns any such description into labelled
//! [`RunOutcome`]s, which is how the paper's experiment harnesses in
//! `cablevod::experiments` collapse into data plus one runner, and how
//! the `cablevod-scenario` binary runs an experiment from a spec file
//! end-to-end.
//!
//! # Execution model
//!
//! The job list is the cross product `points × series` (point-major, so
//! figure rows group naturally). With [`ThreadPolicy::Serial`] (the
//! default) jobs run **in parallel across cores**, each on the serial
//! engine — the classic sweep shape; with [`ThreadPolicy::Fixed`] /
//! [`ThreadPolicy::Auto`] jobs run one after another, each sharded over
//! the engine's worker pool. Either way results come back in job order
//! and are bit-identical to running each job by hand.
//!
//! A point that carries its own [`AxisPoint::source`] materializes that
//! source *inside its job* and drops it before the job returns — a sweep
//! over differently-scaled traces ([`SourceSpec::Scaled`], the Fig 15–16
//! shape) holds at most one scaled trace per in-flight job, never the
//! whole grid.
//!
//! # The spec-file format
//!
//! [`Scenario::to_spec_string`] / [`Scenario::from_spec_str`] round-trip
//! a scenario through a small line-based text format (written for the
//! offline build environment — the serde derives on these types are the
//! vendored markers):
//!
//! ```text
//! name = smoke
//! threads = serial            # serial | auto | engine:<n>
//! sweep_width = 2             # optional cap on concurrent sweep jobs
//!
//! [source]
//! kind = synth                # synth | synth-disk | columnar | csv | scaled | provided
//! preset = smoke_test         # synth presets: powerinfo | experiment_default | smoke_test
//! users = 400
//! days = 3
//!
//! [config]
//! strategy = lfu:7d           # StrategySpec::parse grammar (built-ins only here;
//!                             # axis entries may use strategy=@name for registry entries)
//! neighborhood_size = 100
//! per_peer_storage_gb = 2
//! warmup_days = 1
//! admission = enforcing       # counting (default) | enforcing; also an axis key
//! retry = 3x30s               # <max_retries>x<base_backoff_secs>s; also an axis key
//!
//! [faults]                    # optional degraded-plant plan (crate-level "Fault model" docs):
//! outage = start=3600 end=5400 nbhd=2      # seconds; omit nbhd= for plant-wide
//! derate = start=0 end=86400 permille=500 nbhd=0
//! seeded = seed=42 neighborhoods=4 outages=3 derates=2 horizon_days=3
//!                             # seeded entries expand to explicit events at parse
//!                             # time, so a re-rendered spec lists them explicitly
//!
//! [series]                    # one labelled axis entry per line:
//! LRU = strategy=lru          #   label = key=value ...  [| source key=value ...]
//! LFU = strategy=lfu:7d
//!
//! [points]
//! 1GB = per_peer_storage_gb=1
//! 2GB = per_peer_storage_gb=2
//! ```
//!
//! The `[config]` section covers the commonly swept knobs; fields it
//! cannot express (a custom coax envelope, exotic synth-generator
//! parameters) make [`Scenario::to_spec_string`] fail rather than
//! silently drop them — such scenarios stay programmatic.
//!
//! # Crash safety & resume
//!
//! [`Scenario::execute_resilient`] (the [`resilient`] submodule, driving
//! the `cablevod-scenario` `--checkpoint`/`--resume` flags) makes a grid
//! survive panics, stragglers, and hard kills:
//!
//! * **Cell-identity contract** — every job is one *cell* of the
//!   point-major cross product, identified by a stable, hashable
//!   [`CellKey`] `{point, series}`: indices into [`Scenario::points`] /
//!   [`Scenario::series`] in declaration order (implicit axes count as
//!   one entry at index 0). Cell `(p, s)` is job number
//!   `p * series_len + s`, and this mapping is part of the spec format's
//!   compatibility surface — reordering axis entries changes cell
//!   identities (and the spec fingerprint with them).
//! * **Journal record format** — the checkpoint journal is JSONL: one
//!   `CVJ1 <crc32-hex> <json>` line per record, a header first (scenario
//!   name, [`Scenario::fingerprint`], cell count), then one record per
//!   *completed* cell carrying its integer-exact
//!   [`SimReport`](crate::SimReport). The CRC-32 (same polynomial as the
//!   columnar trace format) covers the JSON body bytes.
//! * **CRC coverage & the torn-tail rule** — the journal is published by
//!   write-temp-then-rename so it is always absent or valid; on load, a
//!   corrupt *final* record (torn or bit-flipped tail) is detected and
//!   dropped — never trusted — while corruption *before* a valid record
//!   fails the whole load. Details in [`checkpoint`].
//! * **Isolation, retry, timeout** — each cell runs under
//!   `catch_unwind`, so one panicking job poisons only its own cell;
//!   failed cells retry with bounded exponential backoff
//!   ([`JobRetry`], the executor-level mirror of the plant-level
//!   [`RetryPolicy`]); an optional per-attempt wall-clock timeout marks
//!   stragglers as failed. Cells that exhaust retries are reported in
//!   the [`GridOutcome`] (and as `failed_cells` by the binary) while the
//!   rest of the grid completes.
//!
//! Because every report field is an exact integer, a resumed grid's
//! final report is **byte-identical** to an uninterrupted run — replayed
//! cells skip their jobs entirely, including [`SourceSpec::Scaled`]
//! trace builds.

pub mod checkpoint;
pub mod resilient;

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cablevod_cache::{
    FillPolicy, PlacementPolicy, StrategyFactory, StrategyRegistry, StrategySpec,
};
use cablevod_hfc::coax::CoaxSpec;
use cablevod_hfc::fault::{FaultEvent, FaultKind, FaultPlan};
use cablevod_hfc::ids::NeighborhoodId;
use cablevod_hfc::units::{BitRate, DataSize, SimDuration, SimTime};
use cablevod_trace::columnar::{ColumnarReader, DEFAULT_CHUNK_SIZE};
use cablevod_trace::io as trace_io;
use cablevod_trace::rechunk::{import_chunk_size, rechunk_multi_index};
use cablevod_trace::record::Trace;
use cablevod_trace::scale;
use cablevod_trace::source::TraceSource;
use cablevod_trace::synth::{generate, generate_to_disk, SynthConfig};
use serde::{Deserialize, Serialize};

use crate::config::{AdmissionMode, RetryPolicy, SimConfig};
use crate::error::SimError;
use crate::runner::{default_threads, run_indexed};
use crate::simulation::{RunOutcome, Simulation, ThreadPolicy};

pub use checkpoint::{
    report_from_json_str, report_to_json_string, CellKey, CellRecord, CheckpointJournal,
    JournalHeader,
};
pub use resilient::{CellOutcome, CellResult, GridOutcome, JobRetry, ResilienceOptions};

/// A serializable description of a whole experiment (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (reports and telemetry).
    pub name: String,
    /// Where the workload comes from.
    pub source: SourceSpec,
    /// The configuration every job starts from.
    pub base: SimConfig,
    /// The figure-series axis (strategies, fill modes, ...). Empty means
    /// one implicit series labelled after the base strategy.
    pub series: Vec<AxisPoint>,
    /// The figure-point (x) axis. Empty means one implicit point
    /// labelled `default`.
    pub points: Vec<AxisPoint>,
    /// How each job runs (see the module docs for sweep scheduling).
    pub threads: ThreadPolicy,
    /// Cap on concurrently running sweep jobs under
    /// [`ThreadPolicy::Serial`] (`None` = one per core). Points that
    /// materialize their own sources hold one workload per in-flight
    /// job, so a sweep over large per-point sources bounds its peak
    /// memory (and temp-disk footprint) with this knob — `Some(1)`
    /// reproduces a strict one-at-a-time sweep.
    pub sweep_width: Option<usize>,
}

/// One labelled entry on a scenario axis.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AxisPoint {
    /// Row/column label in figures and reports.
    pub label: String,
    /// Configuration overrides this entry applies on top of the base.
    pub patch: ConfigPatch,
    /// Strategy override (point-level wins over series-level).
    pub strategy: Option<StrategyRef>,
    /// Trace-source override: materialized inside the job and dropped
    /// with it (the Fig 15–16 scaled-trace shape).
    pub source: Option<SourceSpec>,
}

impl AxisPoint {
    /// A no-op entry with just a label.
    pub fn new(label: impl Into<String>) -> Self {
        AxisPoint {
            label: label.into(),
            ..AxisPoint::default()
        }
    }

    /// Sets the config patch.
    #[must_use]
    pub fn with_patch(mut self, patch: ConfigPatch) -> Self {
        self.patch = patch;
        self
    }

    /// Overrides the strategy with a built-in spec.
    #[must_use]
    pub fn with_strategy(mut self, spec: StrategySpec) -> Self {
        self.strategy = Some(StrategyRef::Spec(spec));
        self
    }

    /// Overrides the strategy with a registry name.
    #[must_use]
    pub fn with_strategy_named(mut self, name: impl Into<String>) -> Self {
        self.strategy = Some(StrategyRef::Named(name.into()));
        self
    }

    /// Overrides the trace source for this entry's jobs.
    #[must_use]
    pub fn with_source(mut self, source: SourceSpec) -> Self {
        self.source = Some(source);
        self
    }
}

/// How an axis entry names its strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategyRef {
    /// A built-in [`StrategySpec`].
    Spec(StrategySpec),
    /// A name resolved against the executor's
    /// [`StrategyRegistry`] (out-of-tree strategies).
    Named(String),
}

/// Optional overrides of the commonly swept [`SimConfig`] fields.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConfigPatch {
    /// Overrides [`SimConfig::neighborhood_size`].
    pub neighborhood_size: Option<u32>,
    /// Overrides [`SimConfig::per_peer_storage`].
    pub per_peer_storage: Option<DataSize>,
    /// Overrides [`SimConfig::stream_slots`].
    pub stream_slots: Option<u8>,
    /// Overrides [`SimConfig::segment_len`].
    pub segment_len: Option<SimDuration>,
    /// Overrides [`SimConfig::warmup_days`].
    pub warmup_days: Option<u64>,
    /// Overrides [`SimConfig::replication`].
    pub replication: Option<u8>,
    /// Overrides [`SimConfig::placement`].
    pub placement: Option<PlacementPolicy>,
    /// Overrides the fill policy ([`SimConfig::with_fill_override`]).
    pub fill: Option<FillPolicy>,
    /// Overrides [`SimConfig::admission`].
    pub admission: Option<AdmissionMode>,
    /// Overrides [`SimConfig::retry`].
    pub retry: Option<RetryPolicy>,
}

macro_rules! patch_setters {
    ($(#[$doc:meta] $name:ident: $field:ident, $ty:ty),* $(,)?) => {
        impl ConfigPatch {
            $(
                #[$doc]
                #[must_use]
                pub fn $name(mut self, value: $ty) -> Self {
                    self.$field = Some(value);
                    self
                }
            )*
        }
    };
}

patch_setters! {
    /// Sets the neighborhood-size override.
    with_neighborhood_size: neighborhood_size, u32,
    /// Sets the per-peer-storage override.
    with_per_peer_storage: per_peer_storage, DataSize,
    /// Sets the stream-slots override.
    with_stream_slots: stream_slots, u8,
    /// Sets the segment-length override.
    with_segment_len: segment_len, SimDuration,
    /// Sets the warm-up-days override.
    with_warmup_days: warmup_days, u64,
    /// Sets the replication override.
    with_replication: replication, u8,
    /// Sets the placement override.
    with_placement: placement, PlacementPolicy,
    /// Sets the fill-policy override.
    with_fill: fill, FillPolicy,
    /// Sets the admission-mode override.
    with_admission: admission, AdmissionMode,
    /// Sets the retry-policy override.
    with_retry: retry, RetryPolicy,
}

impl ConfigPatch {
    /// Applies the set fields on top of `base`.
    pub fn apply(&self, mut base: SimConfig) -> SimConfig {
        if let Some(v) = self.neighborhood_size {
            base = base.with_neighborhood_size(v);
        }
        if let Some(v) = self.per_peer_storage {
            base = base.with_per_peer_storage(v);
        }
        if let Some(v) = self.stream_slots {
            base = base.with_stream_slots(v);
        }
        if let Some(v) = self.segment_len {
            base = base.with_segment_len(v);
        }
        if let Some(v) = self.warmup_days {
            base = base.with_warmup_days(v);
        }
        if let Some(v) = self.replication {
            base = base.with_replication(v);
        }
        if let Some(v) = self.placement {
            base = base.with_placement(v);
        }
        if let Some(v) = self.fill {
            base = base.with_fill_override(v);
        }
        if let Some(v) = self.admission {
            base = base.with_admission(v);
        }
        if let Some(v) = self.retry {
            base = base.with_retry(v);
        }
        base
    }
}

/// Where a scenario's workload comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceSpec {
    /// The caller supplies the source at execution time
    /// ([`Scenario::execute_on`]); [`Scenario::execute`] rejects it.
    Provided,
    /// An in-memory synthetic workload.
    Synth(SynthConfig),
    /// A synthetic workload generated straight to a temporary columnar
    /// file and replayed through the streaming engine (never resident).
    /// The file lives in the process temp dir (honors `TMPDIR`) and is
    /// removed when the materialized source drops.
    SynthDisk {
        /// Generator configuration.
        synth: SynthConfig,
        /// Records per columnar chunk.
        chunk_records: u32,
        /// Neighborhood sizes to re-chunk the generated file
        /// neighborhood-major for (empty: replay time-major). Several
        /// sizes produce one multi-index file whose per-size indexes let
        /// a neighborhood-size sweep hit the decode-once fast path at
        /// every listed size.
        rechunk: Vec<u32>,
    },
    /// An existing columnar `.cvtc` file.
    Columnar {
        /// File path.
        path: String,
        /// Re-chunk neighborhood-major at these neighborhood sizes into
        /// a temporary file before replay (import-time optimization for
        /// sharded runs; empty: replay the file as-is). Several sizes
        /// produce one multi-index file — the spec form is
        /// `rechunk=60,100` — so a neighborhood-size sweep over exactly
        /// those sizes streams the shared columns through the fast path
        /// instead of the merge fallback.
        rechunk: Vec<u32>,
    },
    /// CSV record + catalog files (the PowerInfo import shape).
    Csv {
        /// Records CSV path.
        records: String,
        /// Catalog CSV path.
        catalog: String,
    },
    /// The enclosing scenario's trace scaled by the §V-A transforms —
    /// only meaningful as a per-point override, and requires the base
    /// source to be resident.
    Scaled {
        /// User-population factor.
        population: u32,
        /// Catalog factor.
        catalog: u32,
        /// Seed of the deterministic scaling transforms.
        seed: u64,
    },
}

/// A temporary file removed on drop.
#[derive(Debug)]
struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        std::fs::remove_file(&self.0).ok();
    }
}

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cvsc_{tag}_{}_{n}.cvtc", std::process::id()))
}

/// Re-chunks `reader` neighborhood-major into a fresh temp file carrying
/// one chunk index per size in `sizes` (see
/// [`rechunk_multi_index`]). With the simulator's aligned placement the
/// finest size has the most cells, so it drives the per-cell buffer
/// budget.
fn rechunk_to_temp(reader: &ColumnarReader, sizes: &[u32]) -> Result<TempFile, SimError> {
    let nm = temp_path("rechunk");
    let finest = sizes.iter().copied().min().unwrap_or(1);
    let chunk = import_chunk_size(reader.user_count(), finest, DEFAULT_CHUNK_SIZE, 64 << 20);
    rechunk_multi_index(reader, &nm, sizes, chunk)?;
    Ok(TempFile(nm))
}

/// A materialized [`SourceSpec`]: owns the trace (or the open reader plus
/// any temporary files) for exactly as long as its jobs need it —
/// dropping it frees the workload and removes any temporary files.
pub struct OwnedSource {
    inner: OwnedInner,
}

enum OwnedInner {
    /// A fully resident trace.
    Resident(Trace),
    /// An open columnar reader, optionally over temporary files removed
    /// when this source drops.
    Columnar {
        reader: ColumnarReader,
        #[allow(dead_code)] // held for its Drop
        temp: Vec<TempFile>,
    },
}

impl OwnedSource {
    /// The trace-source view of this workload.
    pub fn source(&self) -> &dyn TraceSource {
        match &self.inner {
            OwnedInner::Resident(trace) => trace,
            OwnedInner::Columnar { reader, .. } => reader,
        }
    }

    /// The resident trace, when this source is in memory.
    pub fn resident(&self) -> Option<&Trace> {
        match &self.inner {
            OwnedInner::Resident(trace) => Some(trace),
            OwnedInner::Columnar { .. } => None,
        }
    }

    fn resident_from(trace: Trace) -> Self {
        OwnedSource {
            inner: OwnedInner::Resident(trace),
        }
    }

    fn columnar(reader: ColumnarReader, temp: Vec<TempFile>) -> Self {
        OwnedSource {
            inner: OwnedInner::Columnar { reader, temp },
        }
    }
}

fn open(path: &str) -> Result<BufReader<File>, SimError> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| SimError::Config {
            reason: format!("cannot open {path}: {e}"),
        })
}

impl SourceSpec {
    /// Materializes this spec into an owned workload. `base` is the
    /// enclosing scenario's resident trace, needed only by
    /// [`SourceSpec::Scaled`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for [`SourceSpec::Provided`], for a
    /// scaled spec without a resident base, and propagates generation and
    /// I/O failures.
    pub fn materialize(&self, base: Option<&Trace>) -> Result<OwnedSource, SimError> {
        match self {
            SourceSpec::Provided => Err(SimError::Config {
                reason: "a `provided` source has no workload of its own: \
                         run it through Scenario::execute_on"
                    .into(),
            }),
            SourceSpec::Synth(config) => Ok(OwnedSource::resident_from(generate(config))),
            SourceSpec::SynthDisk {
                synth,
                chunk_records,
                rechunk,
            } => {
                let path = temp_path("synth");
                generate_to_disk(synth, &path, *chunk_records)?;
                let mut temp = vec![TempFile(path)];
                if !rechunk.is_empty() {
                    let reader = ColumnarReader::open(&temp[0].0)?;
                    temp.push(rechunk_to_temp(&reader, rechunk)?);
                }
                let reader = ColumnarReader::open(&temp.last().expect("non-empty").0)?;
                Ok(OwnedSource::columnar(reader, temp))
            }
            SourceSpec::Columnar { path, rechunk } if rechunk.is_empty() => Ok(
                OwnedSource::columnar(ColumnarReader::open(Path::new(path))?, Vec::new()),
            ),
            SourceSpec::Columnar { path, rechunk } => {
                let reader = ColumnarReader::open(Path::new(path))?;
                let temp = vec![rechunk_to_temp(&reader, rechunk)?];
                let reader = ColumnarReader::open(&temp[0].0)?;
                Ok(OwnedSource::columnar(reader, temp))
            }
            SourceSpec::Csv { records, catalog } => {
                let catalog = trace_io::read_catalog(open(catalog)?)?;
                Ok(OwnedSource::resident_from(trace_io::read_records(
                    open(records)?,
                    catalog,
                )?))
            }
            SourceSpec::Scaled {
                population,
                catalog,
                seed,
            } => {
                let base = base.ok_or_else(|| SimError::Config {
                    reason: "a `scaled` source needs a resident base trace \
                             (scenario-level source must be resident)"
                        .into(),
                })?;
                Ok(OwnedSource::resident_from(scale::scale(
                    base,
                    *population,
                    *catalog,
                    *seed,
                )?))
            }
        }
    }
}

/// One labelled result of a scenario sweep.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The series-axis label this job ran under.
    pub series: String,
    /// The point-axis label this job ran under.
    pub point: String,
    /// The run's report and telemetry.
    pub outcome: RunOutcome,
}

impl ScenarioOutcome {
    /// The job's simulation report.
    pub fn report(&self) -> &crate::report::SimReport {
        &self.outcome.report
    }
}

/// One resolved job of the cross product, tagged with its stable cell
/// identity (see the module docs' cell-identity contract).
pub(crate) struct Job {
    pub(crate) cell: CellKey,
    pub(crate) series: String,
    pub(crate) point: String,
    pub(crate) config: SimConfig,
    pub(crate) factory: Arc<dyn StrategyFactory>,
    pub(crate) source: Option<SourceSpec>,
}

impl Scenario {
    /// A scenario with no axes over `source` and `base`.
    pub fn new(name: impl Into<String>, source: SourceSpec, base: SimConfig) -> Self {
        Scenario {
            name: name.into(),
            source,
            base,
            series: Vec::new(),
            points: Vec::new(),
            threads: ThreadPolicy::Serial,
            sweep_width: None,
        }
    }

    /// A scenario whose workload is supplied at execution time
    /// ([`Scenario::execute_on`]) — the shape the experiment harnesses
    /// use.
    pub fn provided(name: impl Into<String>, base: SimConfig) -> Self {
        Scenario::new(name, SourceSpec::Provided, base)
    }

    /// Sets the series axis.
    #[must_use]
    pub fn with_series(mut self, series: Vec<AxisPoint>) -> Self {
        self.series = series;
        self
    }

    /// Sets the point axis.
    #[must_use]
    pub fn with_points(mut self, points: Vec<AxisPoint>) -> Self {
        self.points = points;
        self
    }

    /// Sets the thread policy.
    #[must_use]
    pub fn with_threads(mut self, threads: ThreadPolicy) -> Self {
        self.threads = threads;
        self
    }

    /// Caps concurrently running sweep jobs (see
    /// [`Scenario::sweep_width`]).
    #[must_use]
    pub fn with_sweep_width(mut self, width: usize) -> Self {
        self.sweep_width = Some(width.max(1));
        self
    }

    /// Executes the scenario's own source with the built-in registry.
    ///
    /// # Errors
    ///
    /// Fails for a [`SourceSpec::Provided`] scenario source when any job
    /// actually needs it (a scenario whose every point carries its own
    /// source runs fine), and propagates job failures (the first failing
    /// job's error, jobs before it completing normally).
    pub fn execute(&self) -> Result<Vec<ScenarioOutcome>, SimError> {
        self.execute_with(&StrategyRegistry::builtin())
    }

    /// [`Scenario::execute`] with an explicit strategy registry.
    ///
    /// # Errors
    ///
    /// As for [`Scenario::execute`].
    pub fn execute_with(
        &self,
        registry: &StrategyRegistry,
    ) -> Result<Vec<ScenarioOutcome>, SimError> {
        if matches!(self.source, SourceSpec::Provided) {
            // Legal as long as every job brings its own source.
            return self.execute_inner(None, registry);
        }
        let owned = self.source.materialize(None)?;
        self.execute_inner(Some((owned.source(), owned.resident())), registry)
    }

    /// Executes against a caller-provided resident trace (ignoring the
    /// scenario's own [`SourceSpec`]) with the built-in registry.
    ///
    /// # Errors
    ///
    /// Propagates job failures.
    pub fn execute_on(&self, trace: &Trace) -> Result<Vec<ScenarioOutcome>, SimError> {
        self.execute_on_with(trace, &StrategyRegistry::builtin())
    }

    /// [`Scenario::execute_on`] with an explicit strategy registry.
    ///
    /// # Errors
    ///
    /// Propagates job failures.
    pub fn execute_on_with(
        &self,
        trace: &Trace,
        registry: &StrategyRegistry,
    ) -> Result<Vec<ScenarioOutcome>, SimError> {
        self.execute_inner(Some((trace, Some(trace))), registry)
    }

    /// Resolves the point-major cross product into concrete jobs — the
    /// single source of truth for cell identity and ordering: job `i` is
    /// cell `(i / series_len, i % series_len)`, shared by the plain and
    /// the resilient executor so journaled cells always replay into the
    /// same grid slot.
    pub(crate) fn resolved_jobs(&self, registry: &StrategyRegistry) -> Result<Vec<Job>, SimError> {
        let implicit_series = [AxisPoint::new(self.base.strategy().label())];
        let implicit_point = [AxisPoint::new("default")];
        let series: &[AxisPoint] = if self.series.is_empty() {
            &implicit_series
        } else {
            &self.series
        };
        let points: &[AxisPoint] = if self.points.is_empty() {
            &implicit_point
        } else {
            &self.points
        };

        let mut jobs = Vec::with_capacity(series.len() * points.len());
        for (point_idx, point) in points.iter().enumerate() {
            for (series_idx, entry) in series.iter().enumerate() {
                let mut config = point.patch.apply(entry.patch.apply(self.base.clone()));
                let strategy_ref = point.strategy.as_ref().or(entry.strategy.as_ref());
                let factory = match strategy_ref {
                    None => config.strategy().factory(),
                    Some(StrategyRef::Spec(spec)) => {
                        config = config.with_strategy(*spec);
                        spec.factory()
                    }
                    Some(StrategyRef::Named(name)) => registry.resolve(name)?,
                };
                jobs.push(Job {
                    cell: CellKey {
                        point: point_idx as u32,
                        series: series_idx as u32,
                    },
                    series: entry.label.clone(),
                    point: point.label.clone(),
                    config,
                    factory,
                    source: point.source.clone().or_else(|| entry.source.clone()),
                });
            }
        }
        Ok(jobs)
    }

    /// The number of grid cells this scenario resolves to: `points x
    /// series`, with empty axes counting as one implicit entry.
    pub fn job_count(&self) -> usize {
        self.points.len().max(1) * self.series.len().max(1)
    }

    /// A stable identity of this scenario description: the CRC-32 of its
    /// canonical spec rendering (or of its debug form for scenarios the
    /// spec format cannot express). Two scenarios with equal fingerprints
    /// have the same grid shape, cell identities, and per-cell
    /// configuration — which is what lets a checkpoint journal refuse to
    /// resume under a different spec.
    pub fn fingerprint(&self) -> u32 {
        let text = self
            .to_spec_string()
            .unwrap_or_else(|_| format!("{self:?}"));
        cablevod_trace::checksum::crc32(text.as_bytes())
    }

    fn execute_inner(
        &self,
        shared: Option<(&dyn TraceSource, Option<&Trace>)>,
        registry: &StrategyRegistry,
    ) -> Result<Vec<ScenarioOutcome>, SimError> {
        let jobs = self.resolved_jobs(registry)?;

        let run_job = |job: &Job| -> Result<RunOutcome, SimError> {
            let sim = |source: &dyn TraceSource| {
                Simulation::over(source)
                    .config(job.config.clone())
                    .strategy_factory(job.factory.clone())
                    .thread_policy(self.threads)
                    .run()
            };
            match &job.source {
                None => {
                    let (source, _) = shared.ok_or_else(|| SimError::Config {
                        reason: "a `provided` source has no workload of its own: \
                                 run it through Scenario::execute_on, or give every \
                                 axis point its own source"
                            .into(),
                    })?;
                    sim(source)
                }
                // Materialized inside the job, dropped before it returns:
                // a sweep holds at most one override source per worker.
                Some(spec) => sim(spec
                    .materialize(shared.and_then(|(_, base)| base))?
                    .source()),
            }
        };

        // Every cell — serial or sharded engine — is an independent job
        // on the shared pool. A sharded cell's own workers draw from the
        // same process-wide ledger as the sweep (see [`crate::runner`]),
        // so small cells pack around a big sharded job instead of the
        // sweep serializing behind it.
        let width = self
            .sweep_width
            .unwrap_or_else(default_threads)
            .clamp(1, jobs.len().max(1));
        let results: Vec<Result<RunOutcome, SimError>> =
            run_indexed(jobs.len(), width, |i| run_job(&jobs[i]));
        let concurrent_shared = width > 1;

        jobs.into_iter()
            .zip(results)
            .map(|(job, result)| {
                let mut outcome = result?;
                // Decode counters live on the source; concurrent jobs over
                // the one shared source would each see the others' decode
                // work in their before/after delta, so per-job attribution
                // only exists when a job owns its source or ran alone —
                // report zero (not a wrong number) otherwise.
                if concurrent_shared && job.source.is_none() {
                    outcome.telemetry.decode = Default::default();
                }
                Ok(ScenarioOutcome {
                    series: job.series,
                    point: job.point,
                    outcome,
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Spec-file format
// ---------------------------------------------------------------------

/// A named synth-preset constructor.
type SynthPreset = (&'static str, fn() -> SynthConfig);

/// The synth presets the spec format can name.
const SYNTH_PRESETS: [SynthPreset; 3] = [
    ("powerinfo", SynthConfig::powerinfo),
    ("experiment_default", SynthConfig::experiment_default),
    ("smoke_test", SynthConfig::smoke_test),
];

fn config_err(reason: String) -> SimError {
    SimError::Config { reason }
}

/// Rejects names/labels the line-based format cannot carry faithfully:
/// `#` starts a comment, the first `=` ends an axis label, `|` separates
/// an axis entry's source override, a leading `[` reads as a section
/// header, and surrounding whitespace would be trimmed away on load.
/// Erroring here keeps the "parses back to an equal value" contract
/// loud instead of silently corrupting on round-trip.
fn check_label(what: &str, text: &str) -> Result<(), SimError> {
    if text.is_empty()
        || text != text.trim()
        || text.starts_with('[')
        || text.contains(['#', '=', '|', '\n'])
    {
        return Err(config_err(format!(
            "{what} {text:?} is not expressible in the spec format \
             (no #, =, |, newlines, leading [, or surrounding whitespace)"
        )));
    }
    Ok(())
}

fn fmt_duration_secs(d: SimDuration) -> String {
    d.as_secs().to_string()
}

fn placement_string(policy: PlacementPolicy) -> String {
    match policy {
        PlacementPolicy::Balanced => "balanced".into(),
        PlacementPolicy::FirstFit => "first-fit".into(),
        PlacementPolicy::Random { seed } => format!("random:{seed}"),
    }
}

fn parse_placement(text: &str) -> Result<PlacementPolicy, SimError> {
    if let Some(seed) = text.strip_prefix("random:") {
        let seed = seed
            .parse()
            .map_err(|_| config_err(format!("bad random-placement seed {seed:?}")))?;
        return Ok(PlacementPolicy::Random { seed });
    }
    match text {
        "balanced" => Ok(PlacementPolicy::Balanced),
        "first-fit" => Ok(PlacementPolicy::FirstFit),
        other => Err(config_err(format!("unknown placement {other:?}"))),
    }
}

fn fill_string(fill: Option<FillPolicy>) -> &'static str {
    match fill {
        None => "default",
        Some(FillPolicy::OnBroadcast) => "on-broadcast",
        Some(FillPolicy::Prefetch) => "prefetch",
    }
}

fn parse_fill(text: &str) -> Result<Option<FillPolicy>, SimError> {
    match text {
        "default" => Ok(None),
        "on-broadcast" => Ok(Some(FillPolicy::OnBroadcast)),
        "prefetch" => Ok(Some(FillPolicy::Prefetch)),
        other => Err(config_err(format!("unknown fill policy {other:?}"))),
    }
}

fn strategy_ref_string(strategy: &StrategyRef) -> String {
    match strategy {
        StrategyRef::Spec(spec) => spec.compact(),
        StrategyRef::Named(name) => format!("@{name}"),
    }
}

fn parse_strategy_ref(text: &str) -> Result<StrategyRef, SimError> {
    if let Some(name) = text.strip_prefix('@') {
        return Ok(StrategyRef::Named(name.into()));
    }
    Ok(StrategyRef::Spec(StrategySpec::parse(text)?))
}

/// Writes a synth config as `preset=<name>` plus the overridden fields,
/// or errors when no preset + supported overrides reproduce it.
fn synth_kv(config: &SynthConfig, out: &mut Vec<(String, String)>) -> Result<(), SimError> {
    for (name, preset) in SYNTH_PRESETS {
        let candidate = SynthConfig {
            users: config.users,
            programs: config.programs,
            days: config.days,
            seed: config.seed,
            sessions_per_user_day: config.sessions_per_user_day,
            ..preset()
        };
        if &candidate == config {
            let base = preset();
            out.push(("preset".into(), name.into()));
            if config.users != base.users {
                out.push(("users".into(), config.users.to_string()));
            }
            if config.programs != base.programs {
                out.push(("programs".into(), config.programs.to_string()));
            }
            if config.days != base.days {
                out.push(("days".into(), config.days.to_string()));
            }
            if config.seed != base.seed {
                out.push(("seed".into(), config.seed.to_string()));
            }
            if config.sessions_per_user_day != base.sessions_per_user_day {
                out.push((
                    "sessions_per_user_day".into(),
                    config.sessions_per_user_day.to_string(),
                ));
            }
            return Ok(());
        }
    }
    Err(config_err(
        "synthetic source differs from every preset beyond the spec format's \
         users/programs/days/seed/sessions_per_user_day overrides — keep it programmatic"
            .into(),
    ))
}

fn parse_synth(pairs: &[(String, String)]) -> Result<SynthConfig, SimError> {
    let mut config = None;
    for (key, value) in pairs {
        if key == "preset" {
            let preset = SYNTH_PRESETS
                .iter()
                .find(|(name, _)| name == value)
                .ok_or_else(|| config_err(format!("unknown synth preset {value:?}")))?;
            config = Some(preset.1());
        }
    }
    let mut config = config.ok_or_else(|| config_err("synth source needs a preset".into()))?;
    for (key, value) in pairs {
        let bad = || config_err(format!("bad synth field {key} = {value:?}"));
        match key.as_str() {
            "preset" | "kind" | "chunk_records" | "rechunk" => {}
            "users" => config.users = value.parse().map_err(|_| bad())?,
            "programs" => config.programs = value.parse().map_err(|_| bad())?,
            "days" => config.days = value.parse().map_err(|_| bad())?,
            "seed" => config.seed = value.parse().map_err(|_| bad())?,
            "sessions_per_user_day" => {
                config.sessions_per_user_day = value.parse().map_err(|_| bad())?
            }
            _ => return Err(bad()),
        }
    }
    Ok(config)
}

/// Serializes a source spec as `kind=... key=value ...` pairs.
fn source_kv(source: &SourceSpec) -> Result<Vec<(String, String)>, SimError> {
    let mut out = Vec::new();
    match source {
        SourceSpec::Provided => out.push(("kind".into(), "provided".into())),
        SourceSpec::Synth(config) => {
            out.push(("kind".into(), "synth".into()));
            synth_kv(config, &mut out)?;
        }
        SourceSpec::SynthDisk {
            synth,
            chunk_records,
            rechunk,
        } => {
            out.push(("kind".into(), "synth-disk".into()));
            synth_kv(synth, &mut out)?;
            out.push(("chunk_records".into(), chunk_records.to_string()));
            if !rechunk.is_empty() {
                out.push(("rechunk".into(), rechunk_value(rechunk)));
            }
        }
        SourceSpec::Columnar { path, rechunk } => {
            out.push(("kind".into(), "columnar".into()));
            out.push(("path".into(), path.clone()));
            if !rechunk.is_empty() {
                out.push(("rechunk".into(), rechunk_value(rechunk)));
            }
        }
        SourceSpec::Csv { records, catalog } => {
            out.push(("kind".into(), "csv".into()));
            out.push(("records".into(), records.clone()));
            out.push(("catalog".into(), catalog.clone()));
        }
        SourceSpec::Scaled {
            population,
            catalog,
            seed,
        } => {
            out.push(("kind".into(), "scaled".into()));
            out.push(("population".into(), population.to_string()));
            out.push(("catalog".into(), catalog.to_string()));
            out.push(("seed".into(), seed.to_string()));
        }
    }
    Ok(out)
}

/// Joins rechunk sizes into the spec form `60,100` — a single size
/// serializes exactly as the old scalar field did, so pre-multi-index
/// spec files and their fingerprints are unchanged.
fn rechunk_value(sizes: &[u32]) -> String {
    sizes
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses `60` or `60,100` into a rechunk size list.
fn parse_rechunk(value: &str) -> Result<Vec<u32>, SimError> {
    value
        .split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|_| config_err(format!("bad rechunk size {v:?}")))
        })
        .collect()
}

fn parse_source(pairs: &[(String, String)]) -> Result<SourceSpec, SimError> {
    let get = |key: &str| -> Option<&str> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let require = |key: &str| {
        get(key).ok_or_else(|| config_err(format!("source is missing the {key} field")))
    };
    let parse_u32 = |key: &str| -> Result<u32, SimError> {
        require(key)?
            .parse()
            .map_err(|_| config_err(format!("bad source field {key}")))
    };
    match require("kind")? {
        "provided" => Ok(SourceSpec::Provided),
        "synth" => Ok(SourceSpec::Synth(parse_synth(pairs)?)),
        "synth-disk" => Ok(SourceSpec::SynthDisk {
            synth: parse_synth(pairs)?,
            chunk_records: match get("chunk_records") {
                Some(v) => v
                    .parse()
                    .map_err(|_| config_err("bad chunk_records".into()))?,
                None => DEFAULT_CHUNK_SIZE,
            },
            rechunk: get("rechunk")
                .map(parse_rechunk)
                .transpose()?
                .unwrap_or_default(),
        }),
        "columnar" => Ok(SourceSpec::Columnar {
            path: require("path")?.to_string(),
            rechunk: get("rechunk")
                .map(parse_rechunk)
                .transpose()?
                .unwrap_or_default(),
        }),
        "csv" => Ok(SourceSpec::Csv {
            records: require("records")?.to_string(),
            catalog: require("catalog")?.to_string(),
        }),
        "scaled" => Ok(SourceSpec::Scaled {
            population: parse_u32("population")?,
            catalog: parse_u32("catalog")?,
            seed: require("seed")?
                .parse()
                .map_err(|_| config_err("bad scaled seed".into()))?,
        }),
        other => Err(config_err(format!("unknown source kind {other:?}"))),
    }
}

/// Splits `k=v k=v ...` into pairs (whitespace-separated, values may not
/// contain spaces).
fn parse_kv_pairs(text: &str) -> Result<Vec<(String, String)>, SimError> {
    text.split_whitespace()
        .map(|pair| {
            pair.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| config_err(format!("expected key=value, got {pair:?}")))
        })
        .collect()
}

fn kv_pairs_string(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serializes an axis entry's right-hand side:
/// `key=value ... [@ source key=value ...]`.
fn axis_rhs(point: &AxisPoint) -> Result<String, SimError> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    if let Some(strategy) = &point.strategy {
        pairs.push(("strategy".into(), strategy_ref_string(strategy)));
    }
    let p = &point.patch;
    if let Some(v) = p.neighborhood_size {
        pairs.push(("neighborhood_size".into(), v.to_string()));
    }
    if let Some(v) = p.per_peer_storage {
        pairs.push(("per_peer_storage_bytes".into(), v.as_bytes().to_string()));
    }
    if let Some(v) = p.stream_slots {
        pairs.push(("stream_slots".into(), v.to_string()));
    }
    if let Some(v) = p.segment_len {
        pairs.push(("segment_len_secs".into(), fmt_duration_secs(v)));
    }
    if let Some(v) = p.warmup_days {
        pairs.push(("warmup_days".into(), v.to_string()));
    }
    if let Some(v) = p.replication {
        pairs.push(("replication".into(), v.to_string()));
    }
    if let Some(v) = p.placement {
        pairs.push(("placement".into(), placement_string(v)));
    }
    if let Some(v) = p.fill {
        pairs.push(("fill".into(), fill_string(Some(v)).to_string()));
    }
    if let Some(v) = p.admission {
        pairs.push(("admission".into(), admission_string(v).to_string()));
    }
    if let Some(v) = p.retry {
        pairs.push(("retry".into(), retry_string(v)));
    }
    let mut rhs = kv_pairs_string(&pairs);
    if let Some(source) = &point.source {
        let source_pairs = source_kv(source)?;
        if !rhs.is_empty() {
            rhs.push(' ');
        }
        let _ = write!(rhs, "| {}", kv_pairs_string(&source_pairs));
    }
    Ok(rhs)
}

fn parse_axis_entry(label: &str, rhs: &str) -> Result<AxisPoint, SimError> {
    let (patch_text, source_text) = match rhs.split_once('|') {
        Some((left, right)) => (left.trim(), Some(right.trim())),
        None => (rhs.trim(), None),
    };
    let mut point = AxisPoint::new(label);
    for (key, value) in parse_kv_pairs(patch_text)? {
        let bad = || config_err(format!("bad axis field {key} = {value:?}"));
        match key.as_str() {
            "strategy" => point.strategy = Some(parse_strategy_ref(&value)?),
            "neighborhood_size" => {
                point.patch.neighborhood_size = Some(value.parse().map_err(|_| bad())?)
            }
            "per_peer_storage_bytes" => {
                point.patch.per_peer_storage =
                    Some(DataSize::from_bytes(value.parse().map_err(|_| bad())?))
            }
            "per_peer_storage_gb" => {
                point.patch.per_peer_storage =
                    Some(DataSize::from_gigabytes(value.parse().map_err(|_| bad())?))
            }
            "stream_slots" => point.patch.stream_slots = Some(value.parse().map_err(|_| bad())?),
            "segment_len_secs" => {
                point.patch.segment_len =
                    Some(SimDuration::from_secs(value.parse().map_err(|_| bad())?))
            }
            "warmup_days" => point.patch.warmup_days = Some(value.parse().map_err(|_| bad())?),
            "replication" => point.patch.replication = Some(value.parse().map_err(|_| bad())?),
            "placement" => point.patch.placement = Some(parse_placement(&value)?),
            "fill" => point.patch.fill = parse_fill(&value)?,
            "admission" => point.patch.admission = Some(parse_admission(&value)?),
            "retry" => point.patch.retry = Some(parse_retry(&value)?),
            _ => return Err(bad()),
        }
    }
    if let Some(text) = source_text {
        point.source = Some(parse_source(&parse_kv_pairs(text)?)?);
    }
    Ok(point)
}

fn admission_string(mode: AdmissionMode) -> &'static str {
    match mode {
        AdmissionMode::Counting => "counting",
        AdmissionMode::Enforcing => "enforcing",
    }
}

fn parse_admission(text: &str) -> Result<AdmissionMode, SimError> {
    match text {
        "counting" => Ok(AdmissionMode::Counting),
        "enforcing" => Ok(AdmissionMode::Enforcing),
        other => Err(config_err(format!("unknown admission mode {other:?}"))),
    }
}

/// `3x30s` — three retries, 30-second base backoff.
fn retry_string(retry: RetryPolicy) -> String {
    format!(
        "{}x{}s",
        retry.max_retries(),
        retry.base_backoff().as_secs()
    )
}

fn parse_retry(text: &str) -> Result<RetryPolicy, SimError> {
    let bad = || config_err(format!("bad retry policy {text:?} (expected e.g. 3x30s)"));
    let (max, backoff) = text.split_once('x').ok_or_else(bad)?;
    let secs = backoff.strip_suffix('s').ok_or_else(bad)?;
    Ok(RetryPolicy::new(
        max.parse().map_err(|_| bad())?,
        SimDuration::from_secs(secs.parse().map_err(|_| bad())?),
    ))
}

/// Renders one fault event as a `[faults]` line (sans trailing newline).
fn fault_event_line(event: &FaultEvent) -> String {
    let mut line = match event.kind {
        FaultKind::Outage => format!(
            "outage = start={} end={}",
            event.start.as_secs(),
            event.end.as_secs()
        ),
        FaultKind::Derate { permille } => format!(
            "derate = start={} end={} permille={permille}",
            event.start.as_secs(),
            event.end.as_secs()
        ),
    };
    if let Some(nbhd) = event.scope {
        let _ = write!(line, " nbhd={}", nbhd.value());
    }
    line
}

/// Parses one `[faults]` line into explicit events (a `seeded` entry
/// expands eagerly, so parsed plans are always plain timed events).
fn parse_fault_entry(key: &str, value: &str) -> Result<Vec<FaultEvent>, SimError> {
    let pairs = parse_kv_pairs(value)?;
    let get = |name: &str| {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let num = |name: &str| -> Result<u64, SimError> {
        get(name)
            .ok_or_else(|| config_err(format!("fault entry missing {name}=")))?
            .parse()
            .map_err(|_| config_err(format!("bad fault field {name}")))
    };
    match key {
        "outage" | "derate" => {
            let kind = if key == "outage" {
                FaultKind::Outage
            } else {
                FaultKind::Derate {
                    permille: num("permille")?
                        .try_into()
                        .map_err(|_| config_err("bad fault field permille".into()))?,
                }
            };
            Ok(vec![FaultEvent {
                scope: get("nbhd")
                    .map(|v| {
                        v.parse()
                            .map(NeighborhoodId::new)
                            .map_err(|_| config_err("bad fault field nbhd".into()))
                    })
                    .transpose()?,
                start: SimTime::from_secs(num("start")?),
                end: SimTime::from_secs(num("end")?),
                kind,
            }])
        }
        "seeded" => {
            let neighborhoods = u32::try_from(num("neighborhoods")?)
                .map_err(|_| config_err("bad fault field neighborhoods".into()))?;
            let plan = FaultPlan::seeded(
                num("seed")?,
                neighborhoods,
                SimDuration::from_days(num("horizon_days")?),
                num("outages")? as u32,
                num("derates")? as u32,
            );
            Ok(plan.events().to_vec())
        }
        other => Err(config_err(format!("unknown fault entry {other:?}"))),
    }
}

fn threads_string(threads: ThreadPolicy) -> String {
    match threads {
        ThreadPolicy::Serial => "serial".into(),
        ThreadPolicy::Auto => "auto".into(),
        ThreadPolicy::Fixed(n) => format!("engine:{n}"),
    }
}

fn parse_threads(text: &str) -> Result<ThreadPolicy, SimError> {
    if let Some(n) = text.strip_prefix("engine:") {
        let n = n
            .parse()
            .map_err(|_| config_err(format!("bad engine worker count {n:?}")))?;
        return Ok(ThreadPolicy::Fixed(n));
    }
    match text {
        "serial" => Ok(ThreadPolicy::Serial),
        "auto" => Ok(ThreadPolicy::Auto),
        other => Err(config_err(format!("unknown thread policy {other:?}"))),
    }
}

impl Scenario {
    /// Renders the scenario in the spec-file format (see the module
    /// docs). [`Scenario::from_spec_str`] parses it back to an equal
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when the scenario uses knobs the
    /// format cannot express (custom coax envelope, custom stream rate,
    /// exotic synth parameters).
    pub fn to_spec_string(&self) -> Result<String, SimError> {
        if *self.base.coax_spec() != CoaxSpec::paper_default() {
            return Err(config_err(
                "spec format cannot express a custom coax envelope".into(),
            ));
        }
        if self.base.stream_rate() != BitRate::STREAM_MPEG2_SD {
            return Err(config_err(
                "spec format cannot express a custom stream rate".into(),
            ));
        }
        check_label("scenario name", &self.name)?;
        for point in self.series.iter().chain(&self.points) {
            check_label("axis label", &point.label)?;
        }
        let mut out = String::new();
        let _ = writeln!(out, "# cablevod scenario spec (cablevod_sim::scenario)");
        let _ = writeln!(out, "name = {}", self.name);
        let _ = writeln!(out, "threads = {}", threads_string(self.threads));
        if let Some(width) = self.sweep_width {
            let _ = writeln!(out, "sweep_width = {width}");
        }
        let _ = writeln!(out, "\n[source]");
        for (key, value) in source_kv(&self.source)? {
            let _ = writeln!(out, "{key} = {value}");
        }
        let _ = writeln!(out, "\n[config]");
        let c = &self.base;
        let _ = writeln!(out, "strategy = {}", c.strategy().compact());
        let _ = writeln!(out, "neighborhood_size = {}", c.neighborhood_size());
        let _ = writeln!(
            out,
            "per_peer_storage_bytes = {}",
            c.per_peer_storage().as_bytes()
        );
        let _ = writeln!(out, "stream_slots = {}", c.stream_slots());
        let _ = writeln!(
            out,
            "segment_len_secs = {}",
            fmt_duration_secs(c.segment_len())
        );
        let _ = writeln!(out, "warmup_days = {}", c.warmup_days());
        let _ = writeln!(out, "replication = {}", c.replication());
        let _ = writeln!(out, "placement = {}", placement_string(c.placement()));
        let _ = writeln!(out, "fill = {}", fill_string(c.fill_override()));
        let _ = writeln!(out, "admission = {}", admission_string(c.admission()));
        let _ = writeln!(out, "retry = {}", retry_string(c.retry()));
        if !c.faults().is_empty() {
            let _ = writeln!(out, "\n[faults]");
            for event in c.faults().events() {
                let _ = writeln!(out, "{}", fault_event_line(event));
            }
        }
        for (header, axis) in [("series", &self.series), ("points", &self.points)] {
            if axis.is_empty() {
                continue;
            }
            let _ = writeln!(out, "\n[{header}]");
            for point in axis {
                let _ = writeln!(out, "{} = {}", point.label, axis_rhs(point)?);
            }
        }
        Ok(out)
    }

    /// Parses the spec-file format (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] with the offending line for any
    /// malformed input.
    pub fn from_spec_str(text: &str) -> Result<Scenario, SimError> {
        let mut scenario = Scenario::new("", SourceSpec::Provided, SimConfig::paper_default());
        let mut section = String::new();
        let mut source_pairs: Vec<(String, String)> = Vec::new();
        let mut fill = None;
        let mut fault_events: Vec<FaultEvent> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            // Every parse failure names the offending line — number AND
            // text — so a typo deep in a fault plan or an axis override
            // is a one-glance fix.
            let err = |reason: String| {
                config_err(format!(
                    "spec line {}: {reason} (line: {:?})",
                    lineno + 1,
                    raw.trim()
                ))
            };
            let at_line = |e: SimError| {
                err(match e {
                    SimError::Config { reason } => reason,
                    other => other.to_string(),
                })
            };
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                if !["source", "config", "faults", "series", "points"].contains(&section.as_str()) {
                    return Err(err(format!("unknown section [{section}]")));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| err("expected key = value".into()))?;
            match section.as_str() {
                "" => match key {
                    "name" => scenario.name = value.to_string(),
                    "threads" => scenario.threads = parse_threads(value).map_err(at_line)?,
                    "sweep_width" => {
                        scenario.sweep_width = Some(
                            value
                                .parse::<usize>()
                                .ok()
                                .filter(|&w| w >= 1)
                                .ok_or_else(|| err(format!("bad sweep width {value:?}")))?,
                        )
                    }
                    other => return Err(err(format!("unknown top-level key {other:?}"))),
                },
                "source" => source_pairs.push((key.to_string(), value.to_string())),
                "config" => {
                    let bad = || err(format!("bad config value {key} = {value:?}"));
                    let c = &mut scenario.base;
                    *c = match key {
                        "strategy" => c.clone().with_strategy(
                            StrategySpec::parse(value).map_err(|e| at_line(e.into()))?,
                        ),
                        "neighborhood_size" => c
                            .clone()
                            .with_neighborhood_size(value.parse().map_err(|_| bad())?),
                        "per_peer_storage_bytes" => c.clone().with_per_peer_storage(
                            DataSize::from_bytes(value.parse().map_err(|_| bad())?),
                        ),
                        "per_peer_storage_gb" => c.clone().with_per_peer_storage(
                            DataSize::from_gigabytes(value.parse().map_err(|_| bad())?),
                        ),
                        "stream_slots" => c
                            .clone()
                            .with_stream_slots(value.parse().map_err(|_| bad())?),
                        "segment_len_secs" => c.clone().with_segment_len(SimDuration::from_secs(
                            value.parse().map_err(|_| bad())?,
                        )),
                        "warmup_days" => c
                            .clone()
                            .with_warmup_days(value.parse().map_err(|_| bad())?),
                        "replication" => c
                            .clone()
                            .with_replication(value.parse().map_err(|_| bad())?),
                        "placement" => c
                            .clone()
                            .with_placement(parse_placement(value).map_err(at_line)?),
                        "fill" => {
                            fill = parse_fill(value).map_err(at_line)?;
                            c.clone()
                        }
                        "admission" => c
                            .clone()
                            .with_admission(parse_admission(value).map_err(at_line)?),
                        "retry" => c.clone().with_retry(parse_retry(value).map_err(at_line)?),
                        other => return Err(err(format!("unknown config key {other:?}"))),
                    };
                }
                "faults" => fault_events.extend(parse_fault_entry(key, value).map_err(at_line)?),
                "series" => scenario
                    .series
                    .push(parse_axis_entry(key, value).map_err(at_line)?),
                "points" => scenario
                    .points
                    .push(parse_axis_entry(key, value).map_err(at_line)?),
                _ => unreachable!("sections are validated on entry"),
            }
        }
        if let Some(fill) = fill {
            scenario.base = scenario.base.with_fill_override(fill);
        }
        if !fault_events.is_empty() {
            scenario.base = scenario.base.with_faults(FaultPlan::new(fault_events)?);
        }
        if !source_pairs.is_empty() {
            scenario.source = parse_source(&source_pairs)?;
        }
        if scenario.name.is_empty() {
            return Err(config_err("spec is missing `name = ...`".into()));
        }
        Ok(scenario)
    }

    /// Reads a scenario from a spec file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Scenario, SimError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| config_err(format!("cannot read scenario {}: {e}", path.display())))?;
        Scenario::from_spec_str(&text)
    }

    /// Writes the scenario to a spec file.
    ///
    /// # Errors
    ///
    /// Propagates formatting ([`Scenario::to_spec_string`]) and I/O
    /// failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SimError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_spec_string()?)
            .map_err(|e| config_err(format!("cannot write scenario {}: {e}", path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_trace::synth::generate;

    fn smoke_synth() -> SynthConfig {
        SynthConfig {
            users: 300,
            programs: 60,
            days: 3,
            ..SynthConfig::smoke_test()
        }
    }

    fn base_config() -> SimConfig {
        SimConfig::paper_default()
            .with_neighborhood_size(100)
            .with_per_peer_storage(DataSize::from_gigabytes(2))
            .with_warmup_days(1)
    }

    #[test]
    fn execute_produces_the_cross_product_in_order() {
        let scenario = Scenario::new("grid", SourceSpec::Synth(smoke_synth()), base_config())
            .with_series(vec![
                AxisPoint::new("LRU").with_strategy(StrategySpec::Lru),
                AxisPoint::new("LFU").with_strategy(StrategySpec::default_lfu()),
            ])
            .with_points(vec![
                AxisPoint::new("1GB").with_patch(
                    ConfigPatch::default().with_per_peer_storage(DataSize::from_gigabytes(1)),
                ),
                AxisPoint::new("2GB").with_patch(
                    ConfigPatch::default().with_per_peer_storage(DataSize::from_gigabytes(2)),
                ),
            ]);
        let outcomes = scenario.execute().expect("runs");
        let labels: Vec<(&str, &str)> = outcomes
            .iter()
            .map(|o| (o.series.as_str(), o.point.as_str()))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("LRU", "1GB"),
                ("LFU", "1GB"),
                ("LRU", "2GB"),
                ("LFU", "2GB")
            ]
        );
        // Jobs are real, distinct simulations of the same workload.
        assert!(outcomes.iter().all(|o| o.report().sessions > 0));
        assert_eq!(outcomes[0].report().sessions, outcomes[3].report().sessions);
    }

    #[test]
    fn execute_matches_direct_runs_bit_for_bit() {
        let trace = generate(&smoke_synth());
        let scenario = Scenario::provided("direct", base_config()).with_points(vec![
            AxisPoint::new("lru").with_strategy(StrategySpec::Lru),
            AxisPoint::new("oracle").with_strategy(StrategySpec::default_oracle()),
        ]);
        let outcomes = scenario.execute_on(&trace).expect("runs");
        for o in &outcomes {
            let spec = match o.point.as_str() {
                "lru" => StrategySpec::Lru,
                _ => StrategySpec::default_oracle(),
            };
            let direct =
                crate::engine::run(&trace, &base_config().with_strategy(spec)).expect("runs");
            assert_eq!(o.report(), &direct, "point {}", o.point);
        }
    }

    #[test]
    fn scaled_points_materialize_inside_their_jobs() {
        let trace = generate(&smoke_synth());
        let scenario = Scenario::provided("scaling", base_config()).with_points(vec![
            AxisPoint::new("x1").with_source(SourceSpec::Scaled {
                population: 1,
                catalog: 1,
                seed: 7,
            }),
            AxisPoint::new("x2").with_source(SourceSpec::Scaled {
                population: 2,
                catalog: 1,
                seed: 7,
            }),
        ]);
        let outcomes = scenario.execute_on(&trace).expect("runs");
        assert_eq!(outcomes.len(), 2);
        assert!(
            outcomes[1].report().sessions > outcomes[0].report().sessions,
            "doubling the population must add sessions"
        );
        let direct = crate::engine::run(
            &scale::scale(&trace, 2, 1, 7).expect("scales"),
            &base_config(),
        )
        .expect("runs");
        assert_eq!(outcomes[1].report(), &direct);
    }

    #[test]
    fn provided_sources_cannot_self_materialize() {
        let scenario = Scenario::provided("nope", base_config());
        assert!(scenario.execute().is_err());
    }

    #[test]
    fn malformed_fault_entry_names_line_number_and_text() {
        let spec = "name = broken\n\n[faults]\noutage = start=10 end=never\n";
        let err = Scenario::from_spec_str(spec).expect_err("bad fault field");
        let text = err.to_string();
        assert!(text.contains("spec line 4"), "no line number in: {text}");
        assert!(
            text.contains("outage = start=10 end=never"),
            "no line text in: {text}"
        );
        assert!(text.contains("bad fault field end"), "no cause in: {text}");
    }

    #[test]
    fn bad_series_override_names_line_number_and_text() {
        let spec = "name = broken\n\n[series]\nLFU = warmup_days=threeish\n";
        let err = Scenario::from_spec_str(spec).expect_err("bad axis field");
        let text = err.to_string();
        assert!(text.contains("spec line 4"), "no line number in: {text}");
        assert!(
            text.contains("LFU = warmup_days=threeish"),
            "no line text in: {text}"
        );
        assert!(text.contains("bad axis field"), "no cause in: {text}");
    }

    #[test]
    fn spec_round_trips() {
        let scenario = Scenario::new(
            "round-trip",
            SourceSpec::Synth(smoke_synth()),
            base_config()
                .with_strategy(StrategySpec::default_oracle())
                .with_placement(PlacementPolicy::Random { seed: 9 })
                .with_fill_override(FillPolicy::Prefetch),
        )
        .with_threads(ThreadPolicy::Fixed(4))
        .with_sweep_width(2)
        .with_series(vec![
            AxisPoint::new("LRU").with_strategy(StrategySpec::Lru),
            AxisPoint::new("custom").with_strategy_named("prior-storing"),
        ])
        .with_points(vec![
            AxisPoint::new("small").with_patch(
                ConfigPatch::default()
                    .with_per_peer_storage(DataSize::from_gigabytes(1))
                    .with_neighborhood_size(50)
                    .with_fill(FillPolicy::OnBroadcast),
            ),
            AxisPoint::new("x3").with_source(SourceSpec::Scaled {
                population: 3,
                catalog: 2,
                seed: 11,
            }),
        ]);
        let text = scenario.to_spec_string().expect("serializes");
        let parsed = Scenario::from_spec_str(&text).expect("parses");
        assert_eq!(parsed, scenario, "spec text:\n{text}");
    }

    #[test]
    fn spec_round_trips_multi_size_rechunk() {
        let scenario = Scenario::new(
            "rechunk-sweep",
            SourceSpec::SynthDisk {
                synth: smoke_synth(),
                chunk_records: 256,
                rechunk: vec![60, 100],
            },
            base_config(),
        )
        .with_points(vec![
            AxisPoint::new("N60").with_patch(ConfigPatch::default().with_neighborhood_size(60)),
            AxisPoint::new("N100").with_patch(ConfigPatch::default().with_neighborhood_size(100)),
        ]);
        let text = scenario.to_spec_string().expect("serializes");
        assert!(text.contains("rechunk = 60,100"), "spec text:\n{text}");
        let parsed = Scenario::from_spec_str(&text).expect("parses");
        assert_eq!(parsed, scenario, "spec text:\n{text}");

        // A single size must serialize exactly as the pre-multi-index
        // scalar form did, so existing checkpoint fingerprints hold.
        let columnar = Scenario::new(
            "rechunk-columnar",
            SourceSpec::Columnar {
                path: "trace.cvtc".into(),
                rechunk: vec![80],
            },
            base_config(),
        );
        let text = columnar.to_spec_string().expect("serializes");
        assert!(text.contains("rechunk = 80\n"), "spec text:\n{text}");
        let parsed = Scenario::from_spec_str(&text).expect("parses");
        assert_eq!(parsed, columnar, "spec text:\n{text}");
    }

    #[test]
    fn spec_parse_rejects_malformed_input() {
        assert!(Scenario::from_spec_str("name = x\n[wat]\n").is_err());
        assert!(Scenario::from_spec_str("name = x\nnot a pair\n").is_err());
        assert!(
            Scenario::from_spec_str("threads = serial\n").is_err(),
            "missing name"
        );
        assert!(Scenario::from_spec_str("name = x\n[config]\nstrategy = warp-drive\n").is_err());
    }

    #[test]
    fn spec_rejects_inexpressible_scenarios() {
        let custom_rate = Scenario::provided(
            "x",
            SimConfig::paper_default().with_stream_rate(BitRate::from_bps(1)),
        );
        assert!(custom_rate.to_spec_string().is_err());

        // Names/labels the line format cannot carry fail loudly instead
        // of corrupting on round-trip.
        let hash_name = Scenario::provided("smoke # v2", SimConfig::paper_default());
        assert!(hash_name.to_spec_string().is_err());
        let eq_label = Scenario::provided("ok", SimConfig::paper_default())
            .with_points(vec![AxisPoint::new("cap=1")]);
        assert!(eq_label.to_spec_string().is_err());
        let pipe_label = Scenario::provided("ok", SimConfig::paper_default())
            .with_series(vec![AxisPoint::new("a|b")]);
        assert!(pipe_label.to_spec_string().is_err());
    }

    #[test]
    fn sweep_width_one_bounds_in_flight_override_sources() {
        // Behavioral floor: width 1 must produce the same results as the
        // default parallel sweep, in order (the memory bound itself is
        // what scaling_grid relies on).
        let trace = generate(&smoke_synth());
        let points = vec![
            AxisPoint::new("x1").with_source(SourceSpec::Scaled {
                population: 1,
                catalog: 1,
                seed: 5,
            }),
            AxisPoint::new("x2").with_source(SourceSpec::Scaled {
                population: 2,
                catalog: 1,
                seed: 5,
            }),
        ];
        let wide = Scenario::provided("wide", base_config())
            .with_points(points.clone())
            .execute_on(&trace)
            .expect("wide sweep runs");
        let narrow = Scenario::provided("narrow", base_config())
            .with_points(points)
            .with_sweep_width(1)
            .execute_on(&trace)
            .expect("width-1 sweep runs");
        assert_eq!(wide.len(), narrow.len());
        for (a, b) in wide.iter().zip(&narrow) {
            assert_eq!(a.point, b.point);
            assert_eq!(a.report(), b.report());
        }
    }
}
