//! The crash-tolerant scenario executor: per-cell panic isolation,
//! bounded retry with exponential backoff, straggler timeouts, and
//! checkpoint/resume through [`checkpoint`](super::checkpoint).
//!
//! [`Scenario::execute_resilient`] runs the same point-major grid as
//! [`Scenario::execute`], with the same scheduling shape (cells fan out
//! over up to `sweep_width` workers of the shared pool, sharded-engine
//! cells included) — but every cell is a bulkhead:
//!
//! * the cell body runs under `catch_unwind`, so a panicking strategy
//!   factory (or any other job-level panic) fails that one cell instead
//!   of tearing down the pool;
//! * a failed attempt retries up to [`JobRetry::max_retries`] times with
//!   doubling backoff — the executor-level mirror of the plant-level
//!   [`RetryPolicy`](crate::config::RetryPolicy);
//! * with a per-attempt timeout, the cell runs on a watchdog thread; an
//!   attempt that outlives the limit is marked failed and the straggler
//!   thread is abandoned (it owns clones of everything it touches, so
//!   abandonment is safe — it just burns its core until done);
//! * a completed cell is journaled *before* it is reported, so a crash
//!   after the journal append never re-runs that cell.
//!
//! Failure handling is all-or-each: by default the first exhausted cell
//! stops the grid (cells already in flight finish and are journaled;
//! unscheduled cells report [`CellResult::Skipped`]); with
//! `keep_going` every cell gets its chance and the failures are
//! collected side by side with the completed results in the returned
//! [`GridOutcome`].

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

use cablevod_cache::{StrategyFactory, StrategyRegistry};
use cablevod_trace::source::TraceSource;

use super::checkpoint::{CellKey, CellRecord, CheckpointJournal, JournalHeader};
use super::{config_err, Job, OwnedSource, Scenario, SourceSpec};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::runner::{default_threads, run_indexed};
use crate::simulation::{RunOutcome, RunTelemetry, Simulation, ThreadPolicy};

/// Bounded exponential backoff for failed *jobs* — the executor-level
/// mirror of the plant-level
/// [`RetryPolicy`](crate::config::RetryPolicy): `max_retries` additional
/// attempts after the first, waiting `base_backoff * 2^attempt` between
/// them. The default is no retries (panics are usually deterministic;
/// retry is for flaky environments — disk pressure, OOM-killed
/// stragglers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobRetry {
    max_retries: u8,
    base_backoff: Duration,
}

impl JobRetry {
    /// A policy with `max_retries` extra attempts and `base_backoff`
    /// before the first retry.
    pub fn new(max_retries: u8, base_backoff: Duration) -> Self {
        JobRetry {
            max_retries,
            base_backoff,
        }
    }

    /// No retries: one attempt per cell (the default).
    pub fn none() -> Self {
        JobRetry::default()
    }

    /// Extra attempts after the first.
    pub fn max_retries(&self) -> u8 {
        self.max_retries
    }

    /// Backoff before the first retry.
    pub fn base_backoff(&self) -> Duration {
        self.base_backoff
    }

    /// The wait before retry number `attempt` (zero-based):
    /// `base * 2^attempt`, saturating.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff.saturating_mul(factor)
    }
}

/// Knobs of one [`Scenario::execute_resilient`] run.
#[derive(Debug, Clone, Default)]
pub struct ResilienceOptions {
    /// Journal completed cells here (and replay them on
    /// [`ResilienceOptions::resume`]). `None` runs without a journal —
    /// isolation, retry and timeout still apply.
    pub checkpoint: Option<PathBuf>,
    /// Replay cells already journaled at
    /// [`ResilienceOptions::checkpoint`] instead of re-running them. An
    /// absent journal file starts a fresh run; a journal written by a
    /// different scenario (fingerprint mismatch) is refused.
    pub resume: bool,
    /// Per-cell retry policy.
    pub retry: JobRetry,
    /// Per-attempt wall-clock limit; `None` waits forever. Timed-out
    /// attempts count as failures (and retry, if attempts remain).
    pub timeout: Option<Duration>,
    /// Keep running remaining cells after a cell exhausts its retries
    /// (default: stop scheduling new cells on the first failure).
    pub keep_going: bool,
}

/// Terminal state of one grid cell.
#[derive(Debug, Clone)]
pub enum CellResult {
    /// The cell has a report.
    Completed {
        /// The cell's run result (telemetry is zeroed for replayed
        /// cells — nothing ran). Boxed: a full report dwarfs the other
        /// variants.
        outcome: Box<RunOutcome>,
        /// Replayed from the checkpoint journal without running.
        replayed: bool,
        /// Live attempts spent (zero for replayed cells).
        attempts: u32,
    },
    /// Every attempt failed; the error text is from the last one.
    Failed {
        /// The last attempt's failure (panic message, timeout, or
        /// simulation error).
        error: String,
        /// Attempts spent.
        attempts: u32,
    },
    /// Never scheduled: an earlier cell failed without `keep_going`.
    Skipped,
}

/// One cell's identity, labels, and terminal state.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Stable grid identity.
    pub key: CellKey,
    /// Series-axis label.
    pub series: String,
    /// Point-axis label.
    pub point: String,
    /// What happened.
    pub result: CellResult,
}

/// Every cell of a resilient grid run, in job (point-major) order.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// Per-cell outcomes, index `i` = cell
    /// `(i / series_len, i % series_len)`.
    pub cells: Vec<CellOutcome>,
}

impl GridOutcome {
    /// Whether every cell completed (live or replayed).
    pub fn is_complete(&self) -> bool {
        self.cells
            .iter()
            .all(|cell| matches!(cell.result, CellResult::Completed { .. }))
    }

    /// Cells that exhausted their retries, in grid order.
    pub fn failed(&self) -> impl Iterator<Item = &CellOutcome> {
        self.cells
            .iter()
            .filter(|cell| matches!(cell.result, CellResult::Failed { .. }))
    }

    /// Completed cells with their run outcomes, in grid order.
    pub fn completed(&self) -> impl Iterator<Item = (&CellOutcome, &RunOutcome)> {
        self.cells.iter().filter_map(|cell| match &cell.result {
            CellResult::Completed { outcome, .. } => Some((cell, outcome.as_ref())),
            _ => None,
        })
    }
}

/// Everything one attempt owns — `'static`, so a timed-out attempt can
/// be abandoned on its watchdog thread without dangling borrows.
struct JobParts {
    cell: CellKey,
    config: SimConfig,
    factory: Arc<dyn StrategyFactory>,
    source: Option<SourceSpec>,
    shared: Option<Arc<OwnedSource>>,
    threads: ThreadPolicy,
}

impl Scenario {
    /// Executes the grid with per-cell fault isolation and (optionally)
    /// a checkpoint journal — see the [module docs](self) and the
    /// crate's "Crash safety & resume" section.
    ///
    /// `progress` is called once per cell as it reaches a terminal
    /// state, from whichever worker finished it (concurrently under a
    /// parallel sweep).
    ///
    /// # Errors
    ///
    /// Fails *before running anything* for an unusable journal (corrupt,
    /// mid-journal damage, or written by a different scenario), an
    /// unresolvable strategy name, or a [`SourceSpec::Provided`] scenario
    /// source that a live cell actually needs. Per-cell failures do not
    /// error: they come back as [`CellResult::Failed`] /
    /// [`CellResult::Skipped`] in the [`GridOutcome`].
    pub fn execute_resilient(
        &self,
        registry: &StrategyRegistry,
        options: &ResilienceOptions,
        progress: &(dyn Fn(&CellOutcome) + Sync),
    ) -> Result<GridOutcome, SimError> {
        if options.resume && options.checkpoint.is_none() {
            return Err(config_err(
                "resume needs a checkpoint path (set ResilienceOptions::checkpoint)".into(),
            ));
        }
        let jobs = self.resolved_jobs(registry)?;
        let header = JournalHeader {
            scenario: self.name.clone(),
            fingerprint: self.fingerprint(),
            cells: jobs.len() as u32,
        };

        let mut replay: BTreeMap<CellKey, CellRecord> = BTreeMap::new();
        let journal = match &options.checkpoint {
            None => None,
            Some(path) if options.resume && path.exists() => {
                let loaded = CheckpointJournal::load(path)?;
                if *loaded.header() != header {
                    return Err(config_err(format!(
                        "checkpoint {} was written by a different scenario \
                         (fingerprint {:08x}, this spec is {:08x}) — delete the \
                         journal or restore the original spec",
                        path.display(),
                        loaded.header().fingerprint,
                        header.fingerprint
                    )));
                }
                for record in loaded.cells() {
                    let job = jobs
                        .iter()
                        .find(|job| job.cell == record.key)
                        .ok_or_else(|| {
                            config_err(format!(
                                "checkpoint {}: cell ({}) is outside the {}-cell grid",
                                path.display(),
                                record.key,
                                jobs.len()
                            ))
                        })?;
                    if job.series != record.series || job.point != record.point {
                        return Err(config_err(format!(
                            "checkpoint {}: cell ({}) was {:?} x {:?} when journaled \
                             but is {:?} x {:?} in this spec",
                            path.display(),
                            record.key,
                            record.series,
                            record.point,
                            job.series,
                            job.point
                        )));
                    }
                    replay.insert(record.key, record.clone());
                }
                Some(loaded)
            }
            Some(path) => Some(CheckpointJournal::create(path, header)?),
        };

        // The shared workload is materialized only when a live (non-
        // replayed) cell needs it — either as its workload outright, or
        // as the resident base of a `scaled` override — so a fully
        // journaled resume rebuilds nothing at all.
        let needs_shared = jobs.iter().any(|job| {
            !replay.contains_key(&job.cell)
                && (job.source.is_none() || matches!(job.source, Some(SourceSpec::Scaled { .. })))
        });
        let shared: Option<Arc<OwnedSource>> = if needs_shared {
            if matches!(self.source, SourceSpec::Provided) {
                return Err(config_err(
                    "a `provided` source has no workload of its own: \
                     run it through Scenario::execute_on, or give every \
                     axis point its own source"
                        .into(),
                ));
            }
            Some(Arc::new(self.source.materialize(None)?))
        } else {
            None
        };

        // Same scheduling shape as `Scenario::execute`: every cell —
        // serial or sharded engine — fans out over the shared pool, with
        // sharded cells drawing their own workers from the same
        // process-wide ledger (see [`crate::runner`]).
        let width = self
            .sweep_width
            .unwrap_or_else(default_threads)
            .clamp(1, jobs.len().max(1));
        let concurrent_shared = width > 1;
        let journal = journal.map(Mutex::new);
        let stop = AtomicBool::new(false);

        let run_cell = |i: usize| -> CellOutcome {
            let job = &jobs[i];
            let result = run_one_cell(
                job,
                &replay,
                shared.clone(),
                self.threads,
                options,
                &journal,
                &stop,
                concurrent_shared,
            );
            let outcome = CellOutcome {
                key: job.cell,
                series: job.series.clone(),
                point: job.point.clone(),
                result,
            };
            progress(&outcome);
            outcome
        };
        let cells = if concurrent_shared {
            run_indexed(jobs.len(), width, run_cell)
        } else {
            (0..jobs.len()).map(run_cell).collect()
        };
        Ok(GridOutcome { cells })
    }
}

/// Builds the [`RunOutcome`] of a journaled cell: the exact report, with
/// zeroed telemetry (nothing ran on resume).
fn replay_outcome(record: &CellRecord) -> Box<RunOutcome> {
    Box::new(RunOutcome {
        report: record.report.clone(),
        telemetry: RunTelemetry {
            wall: Duration::ZERO,
            decode: Default::default(),
            peak_rss_kb: None,
            threads: record.threads as usize,
            strategy: record.strategy.clone(),
            fastpath: false,
        },
    })
}

/// Drives one cell to a terminal state (replay, attempts loop, journal
/// append) — the bulkhead around one grid job.
#[allow(clippy::too_many_arguments)]
fn run_one_cell(
    job: &Job,
    replay: &BTreeMap<CellKey, CellRecord>,
    shared: Option<Arc<OwnedSource>>,
    threads: ThreadPolicy,
    options: &ResilienceOptions,
    journal: &Option<Mutex<CheckpointJournal>>,
    stop: &AtomicBool,
    concurrent_shared: bool,
) -> CellResult {
    // Replay wins over the stop flag: journaled cells stay completed
    // even in a run that fails elsewhere, keeping resume monotone.
    if let Some(record) = replay.get(&job.cell) {
        return CellResult::Completed {
            outcome: replay_outcome(record),
            replayed: true,
            attempts: 0,
        };
    }
    if stop.load(Ordering::SeqCst) {
        return CellResult::Skipped;
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let parts = JobParts {
            cell: job.cell,
            config: job.config.clone(),
            factory: job.factory.clone(),
            source: job.source.clone(),
            shared: shared.clone(),
            threads,
        };
        match run_attempt(parts, options.timeout) {
            Ok(mut outcome) => {
                // Same attribution rule as the plain executor: decode
                // deltas over a source shared by concurrent jobs are not
                // per-job numbers — report zero, not a wrong value.
                if concurrent_shared && job.source.is_none() {
                    outcome.telemetry.decode = Default::default();
                }
                if let Some(journal) = journal {
                    let record = CellRecord {
                        key: job.cell,
                        series: job.series.clone(),
                        point: job.point.clone(),
                        strategy: outcome.telemetry.strategy.clone(),
                        threads: outcome.telemetry.threads as u64,
                        report: outcome.report.clone(),
                    };
                    let mut guard = journal.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Err(e) = guard.append(record) {
                        // A result that cannot reach the journal fails
                        // the cell: dropping checkpoint durability
                        // silently would void the crash-safety contract.
                        drop(guard);
                        if !options.keep_going {
                            stop.store(true, Ordering::SeqCst);
                        }
                        return CellResult::Failed {
                            error: e.to_string(),
                            attempts,
                        };
                    }
                }
                return CellResult::Completed {
                    outcome: Box::new(outcome),
                    replayed: false,
                    attempts,
                };
            }
            Err(error) => {
                if attempts > u32::from(options.retry.max_retries()) {
                    if !options.keep_going {
                        stop.store(true, Ordering::SeqCst);
                    }
                    return CellResult::Failed { error, attempts };
                }
                std::thread::sleep(options.retry.backoff(attempts - 1));
            }
        }
    }
}

/// One attempt: inline under `catch_unwind` without a timeout, on an
/// abandonable watchdog thread with one.
fn run_attempt(parts: JobParts, timeout: Option<Duration>) -> Result<RunOutcome, String> {
    let Some(limit) = timeout else {
        return catch_run(parts);
    };
    let (tx, rx) = mpsc::channel();
    let name = format!("cell-{}x{}", parts.cell.point, parts.cell.series);
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let _ = tx.send(catch_run(parts));
        })
        .map_err(|e| format!("cannot spawn cell worker: {e}"))?;
    match rx.recv_timeout(limit) {
        Ok(result) => {
            let _ = handle.join();
            result
        }
        // The straggler keeps its owned clones alive; we just stop
        // waiting for it.
        Err(mpsc::RecvTimeoutError::Timeout) => Err(format!(
            "cell timed out after {:.1}s (straggler abandoned)",
            limit.as_secs_f64()
        )),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err("cell worker exited without a result".into())
        }
    }
}

/// Runs the attempt body, converting panics and errors to strings — the
/// bulkhead wall itself.
fn catch_run(parts: JobParts) -> Result<RunOutcome, String> {
    match catch_unwind(AssertUnwindSafe(|| execute_parts(&parts))) {
        Ok(result) => result.map_err(|e| e.to_string()),
        // `&*payload` derefs the box before unsizing: coercing
        // `&Box<dyn Any>` directly would downcast against the Box, not
        // the payload inside it.
        Err(payload) => Err(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        format!("job panicked: {text}")
    } else if let Some(text) = payload.downcast_ref::<String>() {
        format!("job panicked: {text}")
    } else {
        "job panicked".into()
    }
}

/// The attempt body — the same simulation construction as the plain
/// executor's `run_job`, over owned parts.
fn execute_parts(parts: &JobParts) -> Result<RunOutcome, SimError> {
    let sim = |source: &dyn TraceSource| {
        Simulation::over(source)
            .config(parts.config.clone())
            .strategy_factory(parts.factory.clone())
            .thread_policy(parts.threads)
            .run()
    };
    match &parts.source {
        None => {
            let shared = parts.shared.as_deref().ok_or_else(|| SimError::Config {
                reason: "a cell without its own source needs the scenario workload".into(),
            })?;
            sim(shared.source())
        }
        // Materialized inside the attempt, dropped with it — override
        // sources never outlive their cell.
        Some(spec) => sim(spec
            .materialize(parts.shared.as_deref().and_then(OwnedSource::resident))?
            .source()),
    }
}
