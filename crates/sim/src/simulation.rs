//! The front door: the [`Simulation`] builder and its [`RunOutcome`].
//!
//! Every way of running one simulation — serial or sharded, over a
//! resident [`Trace`](cablevod_trace::record::Trace) or streaming from an
//! on-disk columnar file — goes through one facade:
//!
//! ```
//! use cablevod_sim::{Simulation, SimConfig};
//! use cablevod_trace::synth::{generate, SynthConfig};
//!
//! let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
//!     ..SynthConfig::smoke_test() });
//! let outcome = Simulation::over(&trace)
//!     .config(SimConfig::paper_default().with_neighborhood_size(100).with_warmup_days(1))
//!     .threads(2)
//!     .run()?;
//! assert!(outcome.report.sessions > 0);
//! println!("{:.0} sessions/s, strategy {}", outcome.sessions_per_sec(),
//!     outcome.telemetry.strategy);
//! # Ok::<(), cablevod_sim::SimError>(())
//! ```
//!
//! The builder is a zero-cost composition layer: it resolves the strategy
//! factory and the thread policy, calls the same engine drivers the
//! legacy [`run`](crate::run)/[`run_parallel`](crate::run_parallel) entry
//! points use, and wraps the **bit-identical** [`SimReport`] together
//! with the run telemetry ([`RunTelemetry`]: wall time, trace decode
//! work, peak RSS) that callers previously scraped by hand.
//!
//! Out-of-tree strategies enter here too: [`Simulation::register`] puts a
//! [`StrategyFactory`] into the builder's
//! [`StrategyRegistry`] and
//! [`Simulation::strategy_named`] selects any registered (or built-in
//! spec-grammar) name — no engine or cache-crate change required.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cablevod_cache::{StrategyFactory, StrategyRegistry, StrategySpec};
use cablevod_trace::source::{DecodeStats, TraceSource};

use crate::config::SimConfig;
use crate::engine;
use crate::error::SimError;
use crate::report::SimReport;
use crate::runner::default_threads;

use serde::{Deserialize, Serialize};

/// How many engine workers a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ThreadPolicy {
    /// The serial reference driver (one global event heap).
    #[default]
    Serial,
    /// The sharded driver with exactly this many workers.
    Fixed(usize),
    /// The sharded driver with one worker per available core.
    Auto,
}

impl ThreadPolicy {
    /// The worker count to hand the sharded driver, or `None` for the
    /// serial driver.
    pub fn worker_count(self) -> Option<usize> {
        match self {
            ThreadPolicy::Serial => None,
            ThreadPolicy::Fixed(n) => Some(n.max(1)),
            ThreadPolicy::Auto => Some(default_threads()),
        }
    }
}

/// Peak resident set of this process in kilobytes, from the kernel's
/// `VmHWM` line (Linux; `None` elsewhere). This is a process-lifetime
/// high-water mark: monotone across runs, so compare successive readings
/// rather than attributing one reading to one run.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// What one run measured about *itself* (the report measures the plant).
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Wall-clock time of the run (excluding source materialization).
    pub wall: Duration,
    /// Chunk-decode work this run added to the source's counters —
    /// [`TraceSource::decode_stats`] after minus before. Zero for
    /// resident sources.
    pub decode: DecodeStats,
    /// Process peak RSS after the run (see [`peak_rss_kb`]).
    pub peak_rss_kb: Option<u64>,
    /// Resolved engine worker count (1 = the serial driver).
    pub threads: usize,
    /// Resolved strategy name ([`StrategyFactory::name`]).
    pub strategy: String,
    /// Whether the source carried a per-neighborhood chunk index matching
    /// the configured neighborhood size — the sweep fast path, where
    /// sharded streaming replays read each shard's chunks straight from
    /// the index with no pre-pass scan or filtering. Always `false` for
    /// resident sources (they decode no chunks).
    pub fastpath: bool,
}

/// A [`SimReport`] bundled with its [`RunTelemetry`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The measured simulation results (bit-identical to the legacy entry
    /// points for the same inputs).
    pub report: SimReport,
    /// What the run itself cost.
    pub telemetry: RunTelemetry,
}

impl RunOutcome {
    /// Replay throughput: sessions simulated per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.report.sessions as f64 / self.telemetry.wall.as_secs_f64().max(f64::EPSILON)
    }
}

/// Which strategy a [`Simulation`] resolves at [`Simulation::run`].
#[derive(Debug, Clone)]
enum StrategyChoice {
    /// The config's [`StrategySpec`] (the default).
    FromConfig,
    /// A name resolved against the builder's registry.
    Named(String),
    /// An explicit factory instance.
    Factory(Arc<dyn StrategyFactory>),
}

/// The single entry-point builder over serial/parallel ×
/// resident/streaming simulation (see the module docs).
#[derive(Debug)]
pub struct Simulation<'a, S: TraceSource + ?Sized> {
    source: &'a S,
    config: SimConfig,
    threads: ThreadPolicy,
    registry: StrategyRegistry,
    strategy: StrategyChoice,
}

impl<'a, S: TraceSource + ?Sized> Simulation<'a, S> {
    /// Starts a simulation over `source` with the paper's default
    /// configuration, the serial driver, and the built-in strategy
    /// registry.
    pub fn over(source: &'a S) -> Self {
        Simulation {
            source,
            config: SimConfig::paper_default(),
            threads: ThreadPolicy::Serial,
            registry: StrategyRegistry::builtin(),
            strategy: StrategyChoice::FromConfig,
        }
    }

    /// Sets the full simulation configuration.
    #[must_use]
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs sharded over exactly `threads` workers.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = ThreadPolicy::Fixed(threads);
        self
    }

    /// Runs the serial reference driver (the default).
    #[must_use]
    pub fn serial(mut self) -> Self {
        self.threads = ThreadPolicy::Serial;
        self
    }

    /// Sets the thread policy directly (spec-file plumbing).
    #[must_use]
    pub fn thread_policy(mut self, policy: ThreadPolicy) -> Self {
        self.threads = policy;
        self
    }

    /// Selects a built-in strategy spec (shorthand for rewriting the
    /// config).
    #[must_use]
    pub fn strategy(mut self, spec: StrategySpec) -> Self {
        self.config = self.config.with_strategy(spec);
        self.strategy = StrategyChoice::FromConfig;
        self
    }

    /// Selects the strategy by name, resolved against the builder's
    /// registry at [`Simulation::run`] (exact registrations first, then
    /// the [`StrategySpec::parse`] grammar, so `"lfu:3d"` needs no
    /// registration).
    #[must_use]
    pub fn strategy_named(mut self, name: impl Into<String>) -> Self {
        self.strategy = StrategyChoice::Named(name.into());
        self
    }

    /// Selects an explicit strategy factory instance.
    #[must_use]
    pub fn strategy_factory(mut self, factory: Arc<dyn StrategyFactory>) -> Self {
        self.strategy = StrategyChoice::Factory(factory);
        self
    }

    /// Registers an out-of-tree strategy factory under `name` in the
    /// builder's registry (select it with
    /// [`Simulation::strategy_named`]).
    #[must_use]
    pub fn register(mut self, name: impl Into<String>, factory: Arc<dyn StrategyFactory>) -> Self {
        self.registry.register(name, factory);
        self
    }

    /// Replaces the builder's whole strategy registry.
    #[must_use]
    pub fn registry(mut self, registry: StrategyRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Runs the simulation and returns the report with run telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for invalid configurations,
    /// [`SimError::Cache`] for unresolvable strategy names, and
    /// propagates trace-source and engine failures.
    pub fn run(self) -> Result<RunOutcome, SimError> {
        let factory: Arc<dyn StrategyFactory> = match &self.strategy {
            StrategyChoice::FromConfig => self.config.strategy().factory(),
            StrategyChoice::Named(name) => self.registry.resolve(name)?,
            StrategyChoice::Factory(factory) => factory.clone(),
        };
        let workers = self.threads.worker_count();
        let decode_before = self.source.decode_stats();
        let started = Instant::now();
        let report = match workers {
            None => engine::run_with(self.source, &self.config, factory.as_ref())?,
            Some(n) => engine::run_parallel_with(self.source, &self.config, factory.as_ref(), n)?,
        };
        let wall = started.elapsed();
        let fastpath = self.source.resident_records().is_none()
            && engine::streaming_fastpath(self.source, &self.config);
        Ok(RunOutcome {
            report,
            telemetry: RunTelemetry {
                wall,
                decode: self.source.decode_stats() - decode_before,
                peak_rss_kb: peak_rss_kb(),
                threads: workers.unwrap_or(1),
                strategy: factory.name().to_string(),
                fastpath,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_hfc::units::DataSize;
    use cablevod_trace::source::ChunkedTrace;
    use cablevod_trace::synth::{generate, SynthConfig};

    fn smoke() -> cablevod_trace::record::Trace {
        generate(&SynthConfig {
            users: 300,
            programs: 60,
            days: 3,
            ..SynthConfig::smoke_test()
        })
    }

    fn config() -> SimConfig {
        SimConfig::paper_default()
            .with_neighborhood_size(100)
            .with_per_peer_storage(DataSize::from_gigabytes(2))
            .with_warmup_days(1)
    }

    #[test]
    fn builder_matches_legacy_run_on_all_four_drivers() {
        let trace = smoke();
        let config = config();
        let serial = crate::engine::run(&trace, &config).expect("legacy serial");
        let built = Simulation::over(&trace)
            .config(config.clone())
            .run()
            .expect("builder serial");
        assert_eq!(built.report, serial);
        assert_eq!(built.telemetry.threads, 1);
        assert_eq!(built.telemetry.strategy, "LFU");

        let sharded = Simulation::over(&trace)
            .config(config.clone())
            .threads(3)
            .run()
            .expect("builder sharded");
        assert_eq!(sharded.report, serial);
        assert_eq!(sharded.telemetry.threads, 3);

        let chunked = ChunkedTrace::new(&trace, 64);
        let streamed = Simulation::over(&chunked)
            .config(config.clone())
            .run()
            .expect("builder streaming");
        assert_eq!(streamed.report, serial);

        let streamed_sharded = Simulation::over(&chunked)
            .config(config)
            .threads(2)
            .run()
            .expect("builder streaming sharded");
        assert_eq!(streamed_sharded.report, serial);
    }

    #[test]
    fn named_strategies_resolve_through_the_registry() {
        let trace = smoke();
        let by_spec = Simulation::over(&trace)
            .config(config())
            .strategy(StrategySpec::Lru)
            .run()
            .expect("spec run");
        let by_name = Simulation::over(&trace)
            .config(config())
            .strategy_named("lru")
            .run()
            .expect("named run");
        assert_eq!(by_name.report, by_spec.report);
        assert_eq!(by_name.telemetry.strategy, "LRU");

        let err = Simulation::over(&trace)
            .config(config())
            .strategy_named("no-such-policy")
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Cache(_)), "{err}");
    }

    #[test]
    fn thread_policy_resolves_workers() {
        assert_eq!(ThreadPolicy::Serial.worker_count(), None);
        assert_eq!(ThreadPolicy::Fixed(4).worker_count(), Some(4));
        assert_eq!(ThreadPolicy::Fixed(0).worker_count(), Some(1));
        assert!(ThreadPolicy::Auto.worker_count().unwrap_or(0) >= 1);
    }
}
