//! The trace-driven discrete-event simulation (§V-B).
//!
//! > "A discrete event simulation is dictated by each download event from
//! > the trace data. When an event occurs, the user who initiated the event
//! > locates the specified program in the simulated topology. This program
//! > will either be cached within the neighborhood by one of the peers, or
//! > it will be housed on a central server. In either case, the download
//! > consumes neighborhood bandwidth, and in the latter case, it also
//! > consumes server bandwidth."
//!
//! Sessions are simulated at segment granularity: a session of watched
//! length `d` issues `ceil(d / segment)` segment requests at segment
//! boundaries, each resolved independently against the neighborhood cache
//! (placement spreads a program's segments over many peers, so consecutive
//! segments can come from different peers, and a busy peer misses only the
//! segments it actually hosts).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use cablevod_cache::{
    AccessSchedule, FeedEvent, GlobalFeed, IndexServer, IndexStats, PlacementPolicy, Resolution,
    SlotLedger,
};
use cablevod_hfc::ids::{NeighborhoodId, PeerId, SegmentId};
use cablevod_hfc::meter::{RateStats, PEAK_END_HOUR, PEAK_START_HOUR};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::topology::{Topology, TopologyConfig};
use cablevod_hfc::units::{SimDuration, SimTime};
use cablevod_trace::record::{SessionRecord, Trace};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimReport;

/// Runs one simulation of `trace` under `config` and returns the measured
/// report.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and propagates
/// broken-invariant failures from the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let report = run(&trace, &SimConfig::paper_default().with_neighborhood_size(100)
///     .with_warmup_days(1))?;
/// assert!(report.sessions > 0);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run(trace: &Trace, config: &SimConfig) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let nominal = config.stream_rate() * config.segment_len();

    let mut topo = Topology::build(
        TopologyConfig::new(trace.user_count(), config.neighborhood_size())
            .with_per_peer_storage(config.per_peer_storage())
            .with_stream_slots(config.stream_slots())
            .with_coax_spec(*config.coax_spec()),
    )?;

    // Future access schedules (Oracle only): one per neighborhood, costs
    // for the whole catalog.
    let schedules: Vec<Option<Arc<AccessSchedule>>> = if config.strategy().needs_schedule() {
        let mut per_nbhd: Vec<Vec<(SimTime, cablevod_hfc::ids::ProgramId)>> =
            vec![Vec::new(); topo.neighborhood_count()];
        for r in trace.iter() {
            let nbhd = topo.neighborhood_of_user(r.user)?;
            per_nbhd[nbhd.index()].push((r.start, r.program));
        }
        let costs: Vec<u32> = trace
            .catalog()
            .iter()
            .map(|(_, info)| {
                u32::from(segmenter.segment_count(info.length)) * u32::from(config.replication())
            })
            .collect();
        per_nbhd
            .into_iter()
            .map(|events| Some(Arc::new(AccessSchedule::from_events(events, costs.clone()))))
            .collect()
    } else {
        vec![None; topo.neighborhood_count()]
    };

    let mut indexes: Vec<IndexServer> = Vec::with_capacity(topo.neighborhood_count());
    for (n, schedule) in schedules.into_iter().enumerate() {
        let id = NeighborhoodId::new(n as u32);
        let members: Vec<(PeerId, u32)> = topo
            .neighborhood(id)?
            .members()
            .iter()
            .map(|&p|

                Ok::<_, SimError>((
                    p,
                    (topo.stb(p)?.capacity().as_bits() / nominal.as_bits()) as u32,
                )))
            .collect::<Result<_, _>>()?;
        // Give each neighborhood's random placement its own stream.
        let placement = match config.placement() {
            PlacementPolicy::Random { seed } => {
                PlacementPolicy::Random { seed: seed ^ ((n as u64) << 32) }
            }
            other => other,
        };
        let ledger = SlotLedger::new(members, placement);
        let strategy = config.strategy().build(ledger.total_slots(), id, schedule)?;
        let mut index = IndexServer::with_replication(
            id,
            strategy,
            segmenter,
            ledger,
            config.replication(),
        );
        if let Some(fill) = config.fill_override() {
            index.set_fill_policy(fill);
        }
        indexes.push(index);
    }

    let mut feed = config.strategy().needs_feed().then(GlobalFeed::new);

    let records = trace.records();
    // Continuation events: (segment start, session index, segment index).
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u16)>> = BinaryHeap::new();
    let mut next_record = 0usize;
    let mut sessions = 0u64;
    let mut segment_requests = 0u64;
    let mut viewer_overcommits = 0u64;

    loop {
        let take_record = match (next_record < records.len(), heap.peek()) {
            (false, None) => break,
            (true, None) => true,
            (false, Some(_)) => false,
            (true, Some(&Reverse((t, _, _)))) => records[next_record].start <= t,
        };

        if take_record {
            let idx = next_record;
            next_record += 1;
            let rec = &records[idx];
            let length = trace
                .catalog()
                .length(rec.program)
                .expect("trace construction validates program references");
            let nbhd = topo.neighborhood_of_user(rec.user)?;
            let home = topo.home_peer(rec.user)?;
            sessions += 1;
            let watched = rec.watched(length);

            // The viewer's own playback occupies one of its slots for the
            // whole session; playback is never blocked, overcommit is
            // counted (DESIGN.md §5).
            let stb = topo.stb_mut(home)?;
            stb.start_stream_unchecked(rec.start, rec.start + watched);
            if stb.is_overcommitted(rec.start) {
                viewer_overcommits += 1;
            }

            let index = &mut indexes[nbhd.index()];
            if let Some(feed) = feed.as_mut() {
                let cost = u32::from(segmenter.segment_count(length))
                    * u32::from(config.replication());
                feed.publish(FeedEvent {
                    time: rec.start,
                    neighborhood: nbhd,
                    program: rec.program,
                    cost,
                });
                index.sync_feed(feed, rec.start);
            }
            index.on_program_access(rec.program, length, rec.start, &mut topo)?;

            if watched.as_secs() > 0 {
                let offset = rec.offset.min(length).as_secs();
                let first_seg = (offset / segmenter.segment_len().as_secs()) as u16;
                process_segment(
                    rec,
                    idx as u32,
                    first_seg,
                    offset,
                    watched,
                    &segmenter,
                    config,
                    &mut topo,
                    index,
                    &mut heap,
                    &mut segment_requests,
                )?;
            }
        } else {
            let Reverse((_, session_idx, seg_idx)) = heap.pop().expect("peeked entry exists");
            let rec = &records[session_idx as usize];
            let length = trace
                .catalog()
                .length(rec.program)
                .expect("trace construction validates program references");
            let nbhd = topo.neighborhood_of_user(rec.user)?;
            let watched = rec.watched(length);
            let offset = rec.offset.min(length).as_secs();
            process_segment(
                rec,
                session_idx,
                seg_idx,
                offset,
                watched,
                &segmenter,
                config,
                &mut topo,
                &mut indexes[nbhd.index()],
                &mut heap,
                &mut segment_requests,
            )?;
        }
    }

    // Assemble the report.
    let days = trace.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    let server_peak = topo.server().peak_stats(warmup, days);
    let server_hourly = topo.server().meter().hourly_profile();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(topo.neighborhood_count());
    for nbhd in topo.neighborhoods() {
        let stats = nbhd.coax().peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(nbhd.coax().meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
    }
    let mut cache = IndexStats::default();
    for index in &indexes {
        cache += *index.stats();
    }

    Ok(SimReport {
        server_peak,
        server_total: topo.server().total(),
        server_hourly,
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions,
        segment_requests,
        viewer_overcommits,
        measured_from_day: warmup,
        measured_to_day: days,
    })
}

/// Resolves one segment request and schedules the session's next one.
///
/// `seg_idx` is the *absolute* segment index within the program; sessions
/// that seek (`offset > 0`) start mid-program, so the playback span is
/// `[offset, offset + watched_total)` in program positions.
#[allow(clippy::too_many_arguments)]
fn process_segment(
    rec: &SessionRecord,
    session_idx: u32,
    seg_idx: u16,
    offset: u64,
    watched_total: SimDuration,
    segmenter: &Segmenter,
    config: &SimConfig,
    topo: &mut Topology,
    index: &mut IndexServer,
    heap: &mut BinaryHeap<Reverse<(SimTime, u32, u16)>>,
    segment_requests: &mut u64,
) -> Result<(), SimError> {
    let seg_len = segmenter.segment_len().as_secs();
    let span_end = offset + watched_total.as_secs();
    let k = u64::from(seg_idx);
    // Overlap of this segment's positions with the playback span.
    let overlap_start = offset.max(k * seg_len);
    let overlap_end = span_end.min((k + 1) * seg_len);
    debug_assert!(overlap_start < overlap_end, "segment outside playback span");
    let watched = overlap_end - overlap_start;
    let start = rec.start + SimDuration::from_secs(overlap_start - offset);
    let end = start + SimDuration::from_secs(watched);
    let size = config.stream_rate() * SimDuration::from_secs(watched);
    let segment = SegmentId::new(rec.program, seg_idx);

    *segment_requests += 1;
    let resolution = index.resolve_segment(segment, rec.start, start, end, topo)?;
    let nbhd = index.home();
    if let Resolution::Miss(_) = resolution {
        // Fig 4: central server -> fiber -> headend rebroadcast.
        topo.server_mut().record_service(start, end, size);
        topo.neighborhood_mut(nbhd)?.fiber_mut().record(start, end, size);
    }
    // Broadcast medium: the segment crosses the coax either way (§VI-B).
    topo.neighborhood_mut(nbhd)?.coax_mut().record_broadcast(start, end, size);

    let next_pos = (k + 1) * seg_len;
    if next_pos < span_end {
        heap.push(Reverse((
            rec.start + SimDuration::from_secs(next_pos - offset),
            session_idx,
            seg_idx + 1,
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_cache::StrategySpec;
    use cablevod_hfc::units::{BitRate, DataSize};
    use cablevod_trace::synth::{generate, SynthConfig};

    fn small_trace() -> Trace {
        generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            ..SynthConfig::smoke_test()
        })
    }

    fn base_config() -> SimConfig {
        SimConfig::paper_default()
            .with_neighborhood_size(200)
            .with_per_peer_storage(DataSize::from_gigabytes(2))
            .with_warmup_days(2)
    }

    #[test]
    fn no_cache_equals_offered_load() {
        let trace = small_trace();
        let report =
            run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        assert_eq!(report.cache.hits, 0);
        assert_eq!(report.hit_rate(), 0.0);
        // Server carries every watched second at the stream rate.
        let expected_bits =
            trace.records().iter().map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum::<u64>();
        assert_eq!(report.server_total.as_bits(), expected_bits);
        assert_eq!(report.sessions as usize, trace.len());
    }

    #[test]
    fn caching_reduces_server_load() {
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        assert!(lfu.cache.hits > 0, "cache must produce hits");
        assert!(
            lfu.server_total < none.server_total,
            "lfu {} vs none {}",
            lfu.server_total,
            none.server_total
        );
        assert!(lfu.server_peak.mean < none.server_peak.mean);
    }

    #[test]
    fn coax_load_is_identical_with_and_without_cache() {
        // §VI-B: broadcast means every segment crosses the coax once no
        // matter who serves it.
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        assert_eq!(none.coax_peak.mean, lfu.coax_peak.mean);
        assert_eq!(none.segment_requests, lfu.segment_requests);
    }

    #[test]
    fn oracle_dominates_lfu_dominates_nothing() {
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        let oracle = run(
            &trace,
            &base_config().with_strategy(StrategySpec::default_oracle()),
        )
        .expect("runs");
        assert!(oracle.server_total <= lfu.server_total, "oracle must not lose to LFU");
        assert!(lfu.server_total < none.server_total);
    }

    #[test]
    fn deterministic_reports() {
        let trace = small_trace();
        let a = run(&trace, &base_config()).expect("runs");
        let b = run(&trace, &base_config()).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn server_plus_peer_bytes_conserve_demand() {
        let trace = small_trace();
        let report = run(&trace, &base_config()).expect("runs");
        // Total coax bytes = total demand; server bytes = misses only.
        let coax_total: u64 = {
            // recompute demand from the trace
            trace
                .records()
                .iter()
                .map(|r| {
                    let len = trace.catalog().length(r.program).expect("valid");
                    r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
                })
                .sum()
        };
        assert!(report.server_total.as_bits() <= coax_total);
        assert_eq!(
            report.cache.requests(),
            report.segment_requests,
            "every segment request is resolved exactly once"
        );
    }

    #[test]
    fn global_lfu_runs_and_uses_feed() {
        let trace = small_trace();
        let config = base_config().with_strategy(StrategySpec::GlobalLfu {
            history: SimDuration::from_days(3),
            lag: SimDuration::from_minutes(30),
        });
        let report = run(&trace, &config).expect("runs");
        assert!(report.cache.hits > 0);
    }

    #[test]
    fn seeking_sessions_request_interior_segments() {
        let trace = generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            seek_prob: 0.3,
            ..SynthConfig::smoke_test()
        });
        assert!(
            trace.iter().any(|r| r.offset.as_secs() > 0),
            "workload must contain seeks"
        );
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        // Conservation still holds with seeks.
        let expected_bits: u64 = trace
            .records()
            .iter()
            .map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum();
        assert_eq!(none.server_total.as_bits(), expected_bits);
        // Caching still works on a seeking workload.
        let lfu = run(&trace, &base_config()).expect("runs");
        assert!(lfu.cache.hits > 0);
        assert!(lfu.server_total < none.server_total);
    }

    #[test]
    fn replication_two_runs() {
        let trace = small_trace();
        let report = run(&trace, &base_config().with_replication(2)).expect("runs");
        assert!(report.cache.hits > 0);
    }
}
