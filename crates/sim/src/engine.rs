//! The trace-driven discrete-event simulation (§V-B).
//!
//! > "A discrete event simulation is dictated by each download event from
//! > the trace data. When an event occurs, the user who initiated the event
//! > locates the specified program in the simulated topology. This program
//! > will either be cached within the neighborhood by one of the peers, or
//! > it will be housed on a central server. In either case, the download
//! > consumes neighborhood bandwidth, and in the latter case, it also
//! > consumes server bandwidth."
//!
//! Sessions are simulated at segment granularity: a session of watched
//! length `d` issues `ceil(d / segment)` segment requests at segment
//! boundaries, each resolved independently against the neighborhood cache
//! (placement spreads a program's segments over many peers, so consecutive
//! segments can come from different peers, and a busy peer misses only the
//! segments it actually hosts).
//!
//! # Engine architecture
//!
//! The paper's unit of isolation is the **neighborhood**: every segment
//! request resolves inside one neighborhood's cache and coax, and the only
//! cross-neighborhood couplings are (a) the shared central-server meter,
//! whose bucket accounting is commutative, and (b) the global popularity
//! feed, which is a pure function of the trace. The engine exploits that
//! in three layers:
//!
//! 1. **Precomputation** — one pass over the trace derives, per session,
//!    everything the hot loop would otherwise re-query: neighborhood, home
//!    peer, program length, watched span, seek offset and first segment
//!    ([`SessionCtx`]). Oracle schedules and the global feed are also
//!    precomputed here, so the event loops never touch the catalog or the
//!    topology maps.
//! 2. **Serial reference path** — [`run`] processes the whole trace
//!    through one global event heap against the whole plant
//!    ([`Topology`]). It is the semantic reference: deliberately simple,
//!    single-threaded, structurally different from the sharded path.
//! 3. **Sharded parallel path** — [`run_parallel`] partitions the trace
//!    by neighborhood and runs each shard's heap + index server + meters
//!    on a scoped worker pool (the same work-stealing primitive as
//!    [`crate::runner::run_sweep`]). Per-shard results merge
//!    deterministically: the server meter folds with
//!    [`RateMeter::merge`] (exact, order-independent), cache counters fold
//!    with `IndexStats + IndexStats`, and per-neighborhood outputs are
//!    collected in neighborhood order. The merged [`SimReport`] is
//!    **bit-identical** to the serial one — a property test enforces it
//!    across strategies and shard counts.
//!
//! Global-feed exactness: the serial engine grows the feed record by
//! record, so at record `r` a strategy can only ever see events `0..=r`.
//! The sharded engine hands every shard the full precomputed feed plus the
//! triggering record's global index as an explicit consumption bound
//! (`IndexServer::sync_feed`'s `limit`), reproducing the serial
//! prefix-visibility semantics exactly — batching lag and all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use cablevod_cache::{
    AccessSchedule, FeedEvent, GlobalFeed, IndexServer, IndexStats, PlacementPolicy, Resolution,
    SlotLedger,
};
use cablevod_hfc::coax::CoaxNetwork;
use cablevod_hfc::ids::{NeighborhoodId, PeerId, SegmentId};
use cablevod_hfc::meter::{RateMeter, RateStats, PEAK_END_HOUR, PEAK_START_HOUR};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::stb::{SetTopBox, StbStore};
use cablevod_hfc::topology::{Topology, TopologyConfig};
use cablevod_hfc::units::{SimDuration, SimTime};
use cablevod_trace::record::{SessionRecord, Trace};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimReport;
use crate::runner;

/// Everything the hot loop needs about one session, precomputed in a
/// single pass so neither the serial nor the sharded path ever re-queries
/// the catalog or the topology during event processing.
#[derive(Debug, Clone, Copy)]
struct SessionCtx {
    /// Dense neighborhood index of the session's user.
    nbhd: u32,
    /// The viewer's own set-top box.
    home: PeerId,
    /// Full program length from the catalog.
    length: SimDuration,
    /// Seconds actually streamed (duration clamped to the post-seek tail).
    watched: SimDuration,
    /// Clamped seek offset in seconds.
    offset: u64,
    /// Absolute index of the first requested segment.
    first_seg: u16,
}

/// Mutable per-run tallies shared by both engine paths.
#[derive(Debug, Clone, Copy, Default)]
struct EngineCounters {
    sessions: u64,
    segment_requests: u64,
    viewer_overcommits: u64,
}

impl EngineCounters {
    fn absorb(&mut self, other: EngineCounters) {
        self.sessions += other.sessions;
        self.segment_requests += other.segment_requests;
        self.viewer_overcommits += other.viewer_overcommits;
    }
}

/// The slice of the plant one event touches. The serial path implements it
/// on the whole [`Topology`]; the sharded path on a per-neighborhood
/// [`ShardPlant`]. Keeping the event-processing code generic over this
/// trait guarantees both paths account bytes identically.
trait SegmentPlant {
    /// The set-top boxes requests resolve against.
    fn stbs(&mut self) -> &mut dyn StbStore;

    /// A cache miss: central server -> fiber -> headend rebroadcast
    /// (Fig 4).
    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError>;

    /// The broadcast every segment makes over the coax regardless of who
    /// serves it (§VI-B).
    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError>;
}

impl SegmentPlant for Topology {
    fn stbs(&mut self) -> &mut dyn StbStore {
        self
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.server_mut().record_service(start, end, size);
        self.neighborhood_mut(nbhd)?
            .fiber_mut()
            .record(start, end, size);
        Ok(())
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.neighborhood_mut(nbhd)?
            .coax_mut()
            .record_broadcast(start, end, size);
        Ok(())
    }
}

/// One neighborhood's set-top boxes, addressed by global [`PeerId`]
/// through a shared peer-to-local-position table (no hashing).
struct ShardStbs<'a> {
    /// The neighborhood whose members these boxes are.
    id: NeighborhoodId,
    stbs: Vec<SetTopBox>,
    /// `positions[peer.index()]` is the peer's slot in `stbs`; only
    /// meaningful for this shard's members, so membership is checked
    /// against `nbhd_of` first.
    positions: &'a [u32],
    /// Every peer's neighborhood ([`Topology::peer_neighborhoods`]):
    /// upholds the [`StbStore`] contract that a foreign peer is
    /// `UnknownPeer`, never silently another member's box.
    nbhd_of: &'a [NeighborhoodId],
}

impl StbStore for ShardStbs<'_> {
    fn stb_mut(&mut self, peer: PeerId) -> Result<&mut SetTopBox, cablevod_hfc::error::HfcError> {
        if self.nbhd_of.get(peer.index()) != Some(&self.id) {
            return Err(cablevod_hfc::error::HfcError::UnknownPeer { peer });
        }
        self.stbs
            .get_mut(self.positions[peer.index()] as usize)
            .ok_or(cablevod_hfc::error::HfcError::UnknownPeer { peer })
    }
}

/// One neighborhood's isolated slice of the plant: its boxes, its coax
/// meter, and a private central-server meter that is merged into the
/// shared one after the shard completes. (No fiber meter: [`SimReport`]
/// never reads fiber data, so shards skip that bucket-split work; the
/// serial path keeps it only because its [`Topology`] owns the links.)
struct ShardPlant<'a> {
    id: NeighborhoodId,
    stbs: ShardStbs<'a>,
    coax: CoaxNetwork,
    server: RateMeter,
}

impl<'a> ShardPlant<'a> {
    fn build(
        n: usize,
        topo: &'a Topology,
        config: &SimConfig,
        positions: &'a [u32],
    ) -> Result<Self, SimError> {
        let id = NeighborhoodId::new(n as u32);
        let stbs: Vec<SetTopBox> = topo
            .neighborhood(id)?
            .members()
            .iter()
            .map(|&p| SetTopBox::new(p, config.per_peer_storage(), config.stream_slots()))
            .collect();
        Ok(ShardPlant {
            id,
            stbs: ShardStbs {
                id,
                stbs,
                positions,
                nbhd_of: topo.peer_neighborhoods(),
            },
            coax: CoaxNetwork::new(*config.coax_spec()),
            server: RateMeter::hourly(),
        })
    }
}

impl SegmentPlant for ShardPlant<'_> {
    fn stbs(&mut self) -> &mut dyn StbStore {
        &mut self.stbs
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(
            nbhd, self.id,
            "shard received a foreign neighborhood's miss"
        );
        self.server.record(start, end, size);
        Ok(())
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(
            nbhd, self.id,
            "shard received a foreign neighborhood's broadcast"
        );
        self.coax.record_broadcast(start, end, size);
        Ok(())
    }
}

/// What one shard hands back for the deterministic merge.
struct ShardOutcome {
    coax: CoaxNetwork,
    server: RateMeter,
    stats: IndexStats,
    counters: EngineCounters,
}

/// Precomputes the per-session context table (one pass; see the module
/// docs).
fn precompute_sessions(
    trace: &Trace,
    topo: &Topology,
    segmenter: &Segmenter,
) -> Result<Vec<SessionCtx>, SimError> {
    let seg_len = segmenter.segment_len().as_secs();
    trace
        .records()
        .iter()
        .map(|rec| {
            let length = trace
                .catalog()
                .length(rec.program)
                .expect("trace construction validates program references");
            let nbhd = topo.neighborhood_of_user(rec.user)?;
            let home = topo.home_peer(rec.user)?;
            let offset = rec.offset.min(length).as_secs();
            Ok(SessionCtx {
                nbhd: nbhd.index() as u32,
                home,
                length,
                watched: rec.watched(length),
                offset,
                first_seg: (offset / seg_len) as u16,
            })
        })
        .collect()
}

/// Builds the per-neighborhood Oracle schedules (empty for strategies that
/// do not need them).
fn build_schedules(
    trace: &Trace,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
) -> Result<Vec<Option<Arc<AccessSchedule>>>, SimError> {
    if !config.strategy().needs_schedule() {
        return Ok(vec![None; topo.neighborhood_count()]);
    }
    let mut per_nbhd: Vec<Vec<(SimTime, cablevod_hfc::ids::ProgramId)>> =
        vec![Vec::new(); topo.neighborhood_count()];
    for r in trace.iter() {
        let nbhd = topo.neighborhood_of_user(r.user)?;
        per_nbhd[nbhd.index()].push((r.start, r.program));
    }
    let costs: Vec<u32> = trace
        .catalog()
        .iter()
        .map(|(_, info)| {
            u32::from(segmenter.segment_count(info.length)) * u32::from(config.replication())
        })
        .collect();
    Ok(per_nbhd
        .into_iter()
        .map(|events| Some(Arc::new(AccessSchedule::from_events(events, costs.clone()))))
        .collect())
}

/// Builds the full global feed from the trace (a pure function of the
/// trace — see the module docs), or `None` when the strategy ignores it.
fn build_feed(
    trace: &Trace,
    ctxs: &[SessionCtx],
    config: &SimConfig,
    segmenter: &Segmenter,
) -> Option<GlobalFeed> {
    config.strategy().needs_feed().then(|| {
        let mut feed = GlobalFeed::new();
        for (rec, ctx) in trace.records().iter().zip(ctxs) {
            let cost =
                u32::from(segmenter.segment_count(ctx.length)) * u32::from(config.replication());
            feed.publish(FeedEvent {
                time: rec.start,
                neighborhood: NeighborhoodId::new(ctx.nbhd),
                program: rec.program,
                cost,
            });
        }
        feed
    })
}

/// Builds the index server for neighborhood `n`. Shared by both engine
/// paths so shard-local caches are configured exactly like serial ones
/// (including the per-neighborhood placement RNG stream).
fn build_index(
    n: usize,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    schedule: Option<Arc<AccessSchedule>>,
) -> Result<IndexServer, SimError> {
    let nominal = config.stream_rate() * config.segment_len();
    let id = NeighborhoodId::new(n as u32);
    let members: Vec<(PeerId, u32)> = topo
        .neighborhood(id)?
        .members()
        .iter()
        .map(|&p| {
            Ok::<_, SimError>((
                p,
                (topo.stb(p)?.capacity().as_bits() / nominal.as_bits()) as u32,
            ))
        })
        .collect::<Result<_, _>>()?;
    // Give each neighborhood's random placement its own stream.
    let placement = match config.placement() {
        PlacementPolicy::Random { seed } => PlacementPolicy::Random {
            seed: seed ^ ((n as u64) << 32),
        },
        other => other,
    };
    let ledger = SlotLedger::new(members, placement);
    let strategy = config
        .strategy()
        .build(ledger.total_slots(), id, schedule)?;
    let mut index =
        IndexServer::with_replication(id, strategy, *segmenter, ledger, config.replication());
    if let Some(fill) = config.fill_override() {
        index.set_fill_policy(fill);
    }
    Ok(index)
}

/// Runs one simulation of `trace` under `config` and returns the measured
/// report.
///
/// This is the serial reference path: one global event heap against the
/// whole plant. [`run_parallel`] produces a bit-identical report by
/// sharding per neighborhood.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and propagates
/// broken-invariant failures from the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let report = run(&trace, &SimConfig::paper_default().with_neighborhood_size(100)
///     .with_warmup_days(1))?;
/// assert!(report.sessions > 0);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run(trace: &Trace, config: &SimConfig) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());

    let mut topo = Topology::build(
        TopologyConfig::new(trace.user_count(), config.neighborhood_size())
            .with_per_peer_storage(config.per_peer_storage())
            .with_stream_slots(config.stream_slots())
            .with_coax_spec(*config.coax_spec()),
    )?;

    let ctxs = precompute_sessions(trace, &topo, &segmenter)?;
    let schedules = build_schedules(trace, &topo, config, &segmenter)?;
    let feed = build_feed(trace, &ctxs, config, &segmenter);

    let mut indexes: Vec<IndexServer> = schedules
        .into_iter()
        .enumerate()
        .map(|(n, schedule)| build_index(n, &topo, config, &segmenter, schedule))
        .collect::<Result<_, _>>()?;

    let records = trace.records();
    // Continuation events: (segment start, session index, segment index).
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u16)>> = BinaryHeap::new();
    let mut next_record = 0usize;
    let mut counters = EngineCounters::default();

    loop {
        let take_record = match (next_record < records.len(), heap.peek()) {
            (false, None) => break,
            (true, None) => true,
            (false, Some(_)) => false,
            (true, Some(&Reverse((t, _, _)))) => records[next_record].start <= t,
        };

        if take_record {
            let idx = next_record;
            next_record += 1;
            let ctx = &ctxs[idx];
            start_session(
                &records[idx],
                ctx,
                idx as u32,
                config,
                &segmenter,
                &mut topo,
                &mut indexes[ctx.nbhd as usize],
                feed.as_ref(),
                &mut heap,
                &mut counters,
            )?;
        } else {
            let Reverse((_, session_idx, seg_idx)) = heap.pop().expect("peeked entry exists");
            let idx = session_idx as usize;
            let ctx = &ctxs[idx];
            process_segment(
                &records[idx],
                ctx,
                session_idx,
                seg_idx,
                &segmenter,
                config,
                &mut topo,
                &mut indexes[ctx.nbhd as usize],
                &mut heap,
                &mut counters.segment_requests,
            )?;
        }
    }

    // Assemble the report.
    let days = trace.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    let server_peak = topo.server().peak_stats(warmup, days);
    let server_hourly = topo.server().meter().hourly_profile();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(topo.neighborhood_count());
    for nbhd in topo.neighborhoods() {
        let stats = nbhd.coax().peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(nbhd.coax().meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
    }
    let mut cache = IndexStats::default();
    for index in &indexes {
        cache += *index.stats();
    }

    Ok(SimReport {
        server_peak,
        server_total: topo.server().total(),
        server_hourly,
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions: counters.sessions,
        segment_requests: counters.segment_requests,
        viewer_overcommits: counters.viewer_overcommits,
        measured_from_day: warmup,
        measured_to_day: days,
    })
}

/// Runs one simulation sharded per neighborhood over `threads` workers,
/// producing a report **bit-identical** to [`run`]'s.
///
/// Correctness rests on the paper's own isolation structure: per-event
/// state (cache, boxes, coax, fiber) is neighborhood-local; the shared
/// server meter merges exactly because bucket accounting is commutative
/// ([`RateMeter::merge`]); and the global feed is precomputed from the
/// trace with per-record consumption bounds, reproducing serial
/// visibility. Shards are scheduled work-stealing style, so thread count
/// affects wall-clock only, never results.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations and propagates
/// broken-invariant failures from the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, run_parallel, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let config = SimConfig::paper_default().with_neighborhood_size(100).with_warmup_days(1);
/// assert_eq!(run_parallel(&trace, &config, 4)?, run(&trace, &config)?);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run_parallel(
    trace: &Trace,
    config: &SimConfig,
    threads: usize,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());

    // The topology is built once for membership, capacities and placement
    // determinism, then only read; every shard owns fresh mutable state.
    let topo = Topology::build(
        TopologyConfig::new(trace.user_count(), config.neighborhood_size())
            .with_per_peer_storage(config.per_peer_storage())
            .with_stream_slots(config.stream_slots())
            .with_coax_spec(*config.coax_spec()),
    )?;

    let ctxs = precompute_sessions(trace, &topo, &segmenter)?;
    let schedules = build_schedules(trace, &topo, config, &segmenter)?;
    let feed = build_feed(trace, &ctxs, config, &segmenter);
    let positions = topo.local_positions();

    let nbhd_count = topo.neighborhood_count();
    let mut shard_records: Vec<Vec<u32>> = vec![Vec::new(); nbhd_count];
    for (i, ctx) in ctxs.iter().enumerate() {
        shard_records[ctx.nbhd as usize].push(i as u32);
    }

    let records = trace.records();
    let outcomes = runner::run_indexed(nbhd_count, threads, |n| {
        let index = build_index(n, &topo, config, &segmenter, schedules[n].clone())?;
        let plant = ShardPlant::build(n, &topo, config, &positions)?;
        run_shard(
            records,
            &ctxs,
            &shard_records[n],
            index,
            plant,
            feed.as_ref(),
            &segmenter,
            config,
        )
    });

    // Deterministic merge, in neighborhood order.
    let days = trace.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    let mut server = RateMeter::hourly();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(nbhd_count);
    let mut cache = IndexStats::default();
    let mut counters = EngineCounters::default();
    for outcome in outcomes {
        let shard = outcome?;
        server.merge(&shard.server);
        let stats = shard.coax.peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(shard.coax.meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
        cache += shard.stats;
        counters.absorb(shard.counters);
    }

    Ok(SimReport {
        server_peak: server.peak_stats(warmup, days),
        server_total: server.total(),
        server_hourly: server.hourly_profile(),
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions: counters.sessions,
        segment_requests: counters.segment_requests,
        viewer_overcommits: counters.viewer_overcommits,
        measured_from_day: warmup,
        measured_to_day: days,
    })
}

/// Runs one neighborhood's complete event sequence: its records in trace
/// order interleaved with its continuation heap, exactly the relative
/// order the serial engine would process them in (cross-neighborhood
/// interleavings never touch this shard's state).
#[allow(clippy::too_many_arguments)]
fn run_shard(
    records: &[SessionRecord],
    ctxs: &[SessionCtx],
    my_records: &[u32],
    mut index: IndexServer,
    mut plant: ShardPlant<'_>,
    feed: Option<&GlobalFeed>,
    segmenter: &Segmenter,
    config: &SimConfig,
) -> Result<ShardOutcome, SimError> {
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u16)>> = BinaryHeap::new();
    let mut next = 0usize;
    let mut counters = EngineCounters::default();

    loop {
        let take_record = match (next < my_records.len(), heap.peek()) {
            (false, None) => break,
            (true, None) => true,
            (false, Some(_)) => false,
            (true, Some(&Reverse((t, _, _)))) => records[my_records[next] as usize].start <= t,
        };

        if take_record {
            let idx = my_records[next] as usize;
            next += 1;
            start_session(
                &records[idx],
                &ctxs[idx],
                idx as u32,
                config,
                segmenter,
                &mut plant,
                &mut index,
                feed,
                &mut heap,
                &mut counters,
            )?;
        } else {
            let Reverse((_, session_idx, seg_idx)) = heap.pop().expect("peeked entry exists");
            let idx = session_idx as usize;
            process_segment(
                &records[idx],
                &ctxs[idx],
                session_idx,
                seg_idx,
                segmenter,
                config,
                &mut plant,
                &mut index,
                &mut heap,
                &mut counters.segment_requests,
            )?;
        }
    }

    Ok(ShardOutcome {
        coax: plant.coax,
        server: plant.server,
        stats: *index.stats(),
        counters,
    })
}

/// Handles one session start: viewer slot accounting, feed sync, strategy
/// update, and the first segment request.
#[allow(clippy::too_many_arguments)]
fn start_session<P: SegmentPlant>(
    rec: &SessionRecord,
    ctx: &SessionCtx,
    session_idx: u32,
    config: &SimConfig,
    segmenter: &Segmenter,
    plant: &mut P,
    index: &mut IndexServer,
    feed: Option<&GlobalFeed>,
    heap: &mut BinaryHeap<Reverse<(SimTime, u32, u16)>>,
    counters: &mut EngineCounters,
) -> Result<(), SimError> {
    counters.sessions += 1;

    // The viewer's own playback occupies one of its slots for the whole
    // session; playback is never blocked, overcommit is counted
    // (DESIGN.md §5).
    let stb = plant.stbs().stb_mut(ctx.home)?;
    stb.start_stream_unchecked(rec.start, rec.start + ctx.watched);
    if stb.is_overcommitted(rec.start) {
        counters.viewer_overcommits += 1;
    }

    if let Some(feed) = feed {
        // Events up to and including this record are "published" (see the
        // module docs on feed exactness).
        index.sync_feed(feed, rec.start, session_idx as usize + 1);
    }
    index.on_program_access(rec.program, ctx.length, rec.start, plant.stbs())?;

    if ctx.watched.as_secs() > 0 {
        process_segment(
            rec,
            ctx,
            session_idx,
            ctx.first_seg,
            segmenter,
            config,
            plant,
            index,
            heap,
            &mut counters.segment_requests,
        )?;
    }
    Ok(())
}

/// Resolves one segment request and schedules the session's next one.
///
/// `seg_idx` is the *absolute* segment index within the program; sessions
/// that seek (`offset > 0`) start mid-program, so the playback span is
/// `[offset, offset + watched_total)` in program positions.
#[allow(clippy::too_many_arguments)]
fn process_segment<P: SegmentPlant>(
    rec: &SessionRecord,
    ctx: &SessionCtx,
    session_idx: u32,
    seg_idx: u16,
    segmenter: &Segmenter,
    config: &SimConfig,
    plant: &mut P,
    index: &mut IndexServer,
    heap: &mut BinaryHeap<Reverse<(SimTime, u32, u16)>>,
    segment_requests: &mut u64,
) -> Result<(), SimError> {
    let seg_len = segmenter.segment_len().as_secs();
    let span_end = ctx.offset + ctx.watched.as_secs();
    let k = u64::from(seg_idx);
    // Overlap of this segment's positions with the playback span.
    let overlap_start = ctx.offset.max(k * seg_len);
    let overlap_end = span_end.min((k + 1) * seg_len);
    debug_assert!(overlap_start < overlap_end, "segment outside playback span");
    let watched = overlap_end - overlap_start;
    let start = rec.start + SimDuration::from_secs(overlap_start - ctx.offset);
    let end = start + SimDuration::from_secs(watched);
    let size = config.stream_rate() * SimDuration::from_secs(watched);
    let segment = SegmentId::new(rec.program, seg_idx);

    *segment_requests += 1;
    let resolution = index.resolve_segment(segment, rec.start, start, end, plant.stbs())?;
    let nbhd = index.home();
    if let Resolution::Miss(_) = resolution {
        // Fig 4: central server -> fiber -> headend rebroadcast.
        plant.record_miss(nbhd, start, end, size)?;
    }
    // Broadcast medium: the segment crosses the coax either way (§VI-B).
    plant.record_broadcast(nbhd, start, end, size)?;

    let next_pos = (k + 1) * seg_len;
    if next_pos < span_end {
        heap.push(Reverse((
            rec.start + SimDuration::from_secs(next_pos - ctx.offset),
            session_idx,
            seg_idx + 1,
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_cache::StrategySpec;
    use cablevod_hfc::units::{BitRate, DataSize};
    use cablevod_trace::synth::{generate, SynthConfig};

    fn small_trace() -> Trace {
        generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            ..SynthConfig::smoke_test()
        })
    }

    fn base_config() -> SimConfig {
        SimConfig::paper_default()
            .with_neighborhood_size(200)
            .with_per_peer_storage(DataSize::from_gigabytes(2))
            .with_warmup_days(2)
    }

    #[test]
    fn no_cache_equals_offered_load() {
        let trace = small_trace();
        let report =
            run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        assert_eq!(report.cache.hits, 0);
        assert_eq!(report.hit_rate(), 0.0);
        // Server carries every watched second at the stream rate.
        let expected_bits = trace
            .records()
            .iter()
            .map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum::<u64>();
        assert_eq!(report.server_total.as_bits(), expected_bits);
        assert_eq!(report.sessions as usize, trace.len());
    }

    #[test]
    fn caching_reduces_server_load() {
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        assert!(lfu.cache.hits > 0, "cache must produce hits");
        assert!(
            lfu.server_total < none.server_total,
            "lfu {} vs none {}",
            lfu.server_total,
            none.server_total
        );
        assert!(lfu.server_peak.mean < none.server_peak.mean);
    }

    #[test]
    fn coax_load_is_identical_with_and_without_cache() {
        // §VI-B: broadcast means every segment crosses the coax once no
        // matter who serves it.
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        assert_eq!(none.coax_peak.mean, lfu.coax_peak.mean);
        assert_eq!(none.segment_requests, lfu.segment_requests);
    }

    #[test]
    fn oracle_dominates_lfu_dominates_nothing() {
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        let oracle = run(
            &trace,
            &base_config().with_strategy(StrategySpec::default_oracle()),
        )
        .expect("runs");
        assert!(
            oracle.server_total <= lfu.server_total,
            "oracle must not lose to LFU"
        );
        assert!(lfu.server_total < none.server_total);
    }

    #[test]
    fn deterministic_reports() {
        let trace = small_trace();
        let a = run(&trace, &base_config()).expect("runs");
        let b = run(&trace, &base_config()).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn server_plus_peer_bytes_conserve_demand() {
        let trace = small_trace();
        let report = run(&trace, &base_config()).expect("runs");
        // Total coax bytes = total demand; server bytes = misses only.
        let coax_total: u64 = {
            // recompute demand from the trace
            trace
                .records()
                .iter()
                .map(|r| {
                    let len = trace.catalog().length(r.program).expect("valid");
                    r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
                })
                .sum()
        };
        assert!(report.server_total.as_bits() <= coax_total);
        assert_eq!(
            report.cache.requests(),
            report.segment_requests,
            "every segment request is resolved exactly once"
        );
    }

    #[test]
    fn global_lfu_runs_and_uses_feed() {
        let trace = small_trace();
        let config = base_config().with_strategy(StrategySpec::GlobalLfu {
            history: SimDuration::from_days(3),
            lag: SimDuration::from_minutes(30),
        });
        let report = run(&trace, &config).expect("runs");
        assert!(report.cache.hits > 0);
    }

    #[test]
    fn seeking_sessions_request_interior_segments() {
        let trace = generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            seek_prob: 0.3,
            ..SynthConfig::smoke_test()
        });
        assert!(
            trace.iter().any(|r| r.offset.as_secs() > 0),
            "workload must contain seeks"
        );
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        // Conservation still holds with seeks.
        let expected_bits: u64 = trace
            .records()
            .iter()
            .map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum();
        assert_eq!(none.server_total.as_bits(), expected_bits);
        // Caching still works on a seeking workload.
        let lfu = run(&trace, &base_config()).expect("runs");
        assert!(lfu.cache.hits > 0);
        assert!(lfu.server_total < none.server_total);
    }

    #[test]
    fn replication_two_runs() {
        let trace = small_trace();
        let report = run(&trace, &base_config().with_replication(2)).expect("runs");
        assert!(report.cache.hits > 0);
    }

    #[test]
    fn parallel_matches_serial_on_every_strategy() {
        let trace = small_trace();
        for spec in [
            StrategySpec::NoCache,
            StrategySpec::Lru,
            StrategySpec::default_lfu(),
            StrategySpec::default_oracle(),
            StrategySpec::GlobalLfu {
                history: SimDuration::from_days(3),
                lag: SimDuration::from_minutes(30),
            },
        ] {
            let config = base_config().with_strategy(spec);
            let serial = run(&trace, &config).expect("serial runs");
            for threads in [1, 2, 8] {
                let parallel = run_parallel(&trace, &config, threads).expect("parallel runs");
                assert_eq!(parallel, serial, "strategy {spec:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_with_seeks_and_replication() {
        let trace = generate(&SynthConfig {
            users: 500,
            programs: 120,
            days: 5,
            seek_prob: 0.25,
            ..SynthConfig::smoke_test()
        });
        let config = base_config().with_replication(2);
        let serial = run(&trace, &config).expect("serial runs");
        let parallel = run_parallel(&trace, &config, 3).expect("parallel runs");
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_matches_serial_under_random_placement() {
        let trace = small_trace();
        let config = base_config().with_placement(PlacementPolicy::Random { seed: 7 });
        let serial = run(&trace, &config).expect("serial runs");
        let parallel = run_parallel(&trace, &config, 4).expect("parallel runs");
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_rejects_invalid_configs_like_serial() {
        let trace = small_trace();
        let config = base_config().with_neighborhood_size(0);
        assert!(run_parallel(&trace, &config, 2).is_err());
    }
}
