//! The trace-driven discrete-event simulation (§V-B).
//!
//! > "A discrete event simulation is dictated by each download event from
//! > the trace data. When an event occurs, the user who initiated the event
//! > locates the specified program in the simulated topology. This program
//! > will either be cached within the neighborhood by one of the peers, or
//! > it will be housed on a central server. In either case, the download
//! > consumes neighborhood bandwidth, and in the latter case, it also
//! > consumes server bandwidth."
//!
//! Sessions are simulated at segment granularity: a session of watched
//! length `d` issues `ceil(d / segment)` segment requests at segment
//! boundaries, each resolved independently against the neighborhood cache
//! (placement spreads a program's segments over many peers, so consecutive
//! segments can come from different peers, and a busy peer misses only the
//! segments it actually hosts).
//!
//! # Engine architecture
//!
//! The paper's unit of isolation is the **neighborhood**: every segment
//! request resolves inside one neighborhood's cache and coax, and the only
//! cross-neighborhood couplings are (a) the shared central-server meter,
//! whose bucket accounting is commutative, and (b) the global popularity
//! feed, which is a pure function of the trace.
//!
//! Both entry points — the serial reference [`run`] and the sharded
//! [`run_parallel`] — are generic over
//! [`TraceSource`](cablevod_trace::source::TraceSource), and each has two
//! internal paths:
//!
//! * **Resident** (`source.resident_records()` is `Some`): the classic
//!   hot path over the full record slice — per-session contexts, Oracle
//!   schedules and the global feed are precomputed in one pass, and the
//!   sharded variant gives every shard the whole precomputed feed plus
//!   per-record consumption bounds.
//! * **Streaming** (chunked sources — an on-disk
//!   [`ColumnarReader`](cablevod_trace::columnar::ColumnarReader) or a
//!   [`ChunkedTrace`](cablevod_trace::source::ChunkedTrace)): records are
//!   staged one chunk at a time, per-session contexts are computed at
//!   ingestion, and records of in-flight sessions live in a small
//!   active-session slab — resident memory is bounded by chunk size plus
//!   session concurrency, never by trace length.
//!
//! # Watermark-ordered global feeds
//!
//! Serial feed exactness: the serial engine grows the feed record by
//! record, so at record `r` a strategy can only ever see events `0..=r`.
//! The resident sharded path reproduces that by precomputing the whole
//! feed and bounding consumption per record. A *streaming* source breaks
//! precomputation — no pass may hold every record — so the streaming
//! sharded path replaces it with the **watermark protocol** of
//! [`WatermarkFeed`]: every shard publishes the feed events for its own
//! records (tagged with their global sequence numbers) as it discovers
//! them in its chunk scan, and advances its watermark — its local clock in
//! sequence-number terms — past every index it can no longer own events
//! below. A shard about to start the session with global index `g` first
//! waits until the cross-shard minimum watermark (the *frontier*) passes
//! `g`, then consumes events `0..=g` exactly like the serial engine.
//!
//! Deadlock freedom: among blocked shards, the one waiting at the
//! globally smallest record index `g` needs only watermarks above `g`;
//! every other blocked shard waits at a larger index and has already
//! advanced past it, and running shards advance in bounded time — so some
//! shard can always proceed, at any worker count (shards are cooperative
//! tasks multiplexed onto workers, parked when blocked).
//!
//! Whichever path runs, the report is **bit-identical** — property tests
//! enforce `run == run_parallel == streaming run == streaming
//! run_parallel` across strategies, chunk sizes and shard counts.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cablevod_cache::{
    AccessSchedule, FeedEvent, FeedEvents, GlobalFeed, IndexServer, IndexStats, PlacementPolicy,
    Resolution, SlotLedger, WatermarkFeed,
};
use cablevod_hfc::coax::CoaxNetwork;
use cablevod_hfc::ids::{NeighborhoodId, PeerId, ProgramId, SegmentId};
use cablevod_hfc::meter::{RateMeter, RateStats, PEAK_END_HOUR, PEAK_START_HOUR};
use cablevod_hfc::segment::Segmenter;
use cablevod_hfc::stb::{SetTopBox, StbStore};
use cablevod_hfc::topology::{Topology, TopologyConfig};
use cablevod_hfc::units::{SimDuration, SimTime};
use cablevod_trace::catalog::ProgramCatalog;
use cablevod_trace::record::SessionRecord;
use cablevod_trace::source::TraceSource;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::report::SimReport;
use crate::runner;

/// Error reason used when a shard bails out because a sibling failed; the
/// merge prefers the sibling's real error over this sentinel.
const ABORTED: &str = "aborted after a failure in another shard";

/// Everything the hot loop needs about one session, precomputed (resident
/// path) or computed at ingestion (streaming paths) so neither event loop
/// ever re-queries the catalog or the topology during event processing.
#[derive(Debug, Clone, Copy)]
struct SessionCtx {
    /// Dense neighborhood index of the session's user.
    nbhd: u32,
    /// The viewer's own set-top box.
    home: PeerId,
    /// Full program length from the catalog.
    length: SimDuration,
    /// Seconds actually streamed (duration clamped to the post-seek tail).
    watched: SimDuration,
    /// Clamped seek offset in seconds.
    offset: u64,
    /// Absolute index of the first requested segment.
    first_seg: u16,
}

/// Computes one session's context (pure function of record, catalog and
/// topology — both engine paths share it, so contexts are identical no
/// matter when they are computed).
fn session_ctx(
    rec: &SessionRecord,
    catalog: &ProgramCatalog,
    topo: &Topology,
    seg_len: u64,
) -> Result<SessionCtx, SimError> {
    let length = catalog.length(rec.program).ok_or(SimError::Trace(
        cablevod_trace::TraceError::DanglingProgram {
            program: rec.program,
        },
    ))?;
    let nbhd = topo.neighborhood_of_user(rec.user)?;
    let home = topo.home_peer(rec.user)?;
    let offset = rec.offset.min(length).as_secs();
    Ok(SessionCtx {
        nbhd: nbhd.index() as u32,
        home,
        length,
        watched: rec.watched(length),
        offset,
        first_seg: (offset / seg_len) as u16,
    })
}

/// The feed event an access publishes (pure function of the record — the
/// serial grow-as-you-go feed, the resident precomputed feed and the
/// streaming watermark feed all emit exactly this).
fn feed_event(
    rec: &SessionRecord,
    ctx: &SessionCtx,
    config: &SimConfig,
    segmenter: &Segmenter,
) -> FeedEvent {
    FeedEvent {
        time: rec.start,
        neighborhood: NeighborhoodId::new(ctx.nbhd),
        program: rec.program,
        cost: u32::from(segmenter.segment_count(ctx.length)) * u32::from(config.replication()),
    }
}

/// Mutable per-run tallies shared by both engine paths.
#[derive(Debug, Clone, Copy, Default)]
struct EngineCounters {
    sessions: u64,
    segment_requests: u64,
    viewer_overcommits: u64,
}

impl EngineCounters {
    fn absorb(&mut self, other: EngineCounters) {
        self.sessions += other.sessions;
        self.segment_requests += other.segment_requests;
        self.viewer_overcommits += other.viewer_overcommits;
    }
}

/// The slice of the plant one event touches. The serial path implements it
/// on the whole [`Topology`]; the sharded path on a per-neighborhood
/// [`ShardPlant`]. Keeping the event-processing code generic over this
/// trait guarantees both paths account bytes identically.
trait SegmentPlant {
    /// The set-top boxes requests resolve against.
    fn stbs(&mut self) -> &mut dyn StbStore;

    /// A cache miss: central server -> fiber -> headend rebroadcast
    /// (Fig 4).
    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError>;

    /// The broadcast every segment makes over the coax regardless of who
    /// serves it (§VI-B).
    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError>;
}

impl SegmentPlant for Topology {
    fn stbs(&mut self) -> &mut dyn StbStore {
        self
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.server_mut().record_service(start, end, size);
        self.neighborhood_mut(nbhd)?
            .fiber_mut()
            .record(start, end, size);
        Ok(())
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        self.neighborhood_mut(nbhd)?
            .coax_mut()
            .record_broadcast(start, end, size);
        Ok(())
    }
}

/// One neighborhood's set-top boxes, addressed by global [`PeerId`]
/// through a shared peer-to-local-position table (no hashing).
struct ShardStbs<'a> {
    /// The neighborhood whose members these boxes are.
    id: NeighborhoodId,
    stbs: Vec<SetTopBox>,
    /// `positions[peer.index()]` is the peer's slot in `stbs`; only
    /// meaningful for this shard's members, so membership is checked
    /// against `nbhd_of` first.
    positions: &'a [u32],
    /// Every peer's neighborhood ([`Topology::peer_neighborhoods`]):
    /// upholds the [`StbStore`] contract that a foreign peer is
    /// `UnknownPeer`, never silently another member's box.
    nbhd_of: &'a [NeighborhoodId],
}

impl StbStore for ShardStbs<'_> {
    fn stb_mut(&mut self, peer: PeerId) -> Result<&mut SetTopBox, cablevod_hfc::error::HfcError> {
        if self.nbhd_of.get(peer.index()) != Some(&self.id) {
            return Err(cablevod_hfc::error::HfcError::UnknownPeer { peer });
        }
        self.stbs
            .get_mut(self.positions[peer.index()] as usize)
            .ok_or(cablevod_hfc::error::HfcError::UnknownPeer { peer })
    }
}

/// One neighborhood's isolated slice of the plant: its boxes, its coax
/// meter, and a private central-server meter that is merged into the
/// shared one after the shard completes. (No fiber meter: [`SimReport`]
/// never reads fiber data, so shards skip that bucket-split work; the
/// serial path keeps it only because its [`Topology`] owns the links.)
struct ShardPlant<'a> {
    id: NeighborhoodId,
    stbs: ShardStbs<'a>,
    coax: CoaxNetwork,
    server: RateMeter,
}

impl<'a> ShardPlant<'a> {
    fn build(
        n: usize,
        topo: &'a Topology,
        config: &SimConfig,
        positions: &'a [u32],
    ) -> Result<Self, SimError> {
        let id = NeighborhoodId::new(n as u32);
        let stbs: Vec<SetTopBox> = topo
            .neighborhood(id)?
            .members()
            .iter()
            .map(|&p| SetTopBox::new(p, config.per_peer_storage(), config.stream_slots()))
            .collect();
        Ok(ShardPlant {
            id,
            stbs: ShardStbs {
                id,
                stbs,
                positions,
                nbhd_of: topo.peer_neighborhoods(),
            },
            coax: CoaxNetwork::new(*config.coax_spec()),
            server: RateMeter::hourly(),
        })
    }
}

impl SegmentPlant for ShardPlant<'_> {
    fn stbs(&mut self) -> &mut dyn StbStore {
        &mut self.stbs
    }

    fn record_miss(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(
            nbhd, self.id,
            "shard received a foreign neighborhood's miss"
        );
        self.server.record(start, end, size);
        Ok(())
    }

    fn record_broadcast(
        &mut self,
        nbhd: NeighborhoodId,
        start: SimTime,
        end: SimTime,
        size: cablevod_hfc::units::DataSize,
    ) -> Result<(), SimError> {
        debug_assert_eq!(
            nbhd, self.id,
            "shard received a foreign neighborhood's broadcast"
        );
        self.coax.record_broadcast(start, end, size);
        Ok(())
    }
}

/// What one shard hands back for the deterministic merge.
struct ShardOutcome {
    coax: CoaxNetwork,
    server: RateMeter,
    stats: IndexStats,
    counters: EngineCounters,
}

/// Precomputes the per-session context table (one pass; resident paths
/// only — streaming paths compute contexts at ingestion).
fn precompute_sessions(
    records: &[SessionRecord],
    catalog: &ProgramCatalog,
    topo: &Topology,
    segmenter: &Segmenter,
) -> Result<Vec<SessionCtx>, SimError> {
    let seg_len = segmenter.segment_len().as_secs();
    records
        .iter()
        .map(|rec| session_ctx(rec, catalog, topo, seg_len))
        .collect()
}

/// Program slot costs, indexed by program — what Oracle schedules charge.
fn schedule_costs(catalog: &ProgramCatalog, config: &SimConfig, segmenter: &Segmenter) -> Vec<u32> {
    catalog
        .iter()
        .map(|(_, info)| {
            u32::from(segmenter.segment_count(info.length)) * u32::from(config.replication())
        })
        .collect()
}

/// Builds the per-neighborhood Oracle schedules from per-neighborhood
/// event lists.
fn schedules_from_events(
    per_nbhd: Vec<Vec<(SimTime, ProgramId)>>,
    costs: &[u32],
) -> Vec<Option<Arc<AccessSchedule>>> {
    per_nbhd
        .into_iter()
        .map(|events| {
            Some(Arc::new(AccessSchedule::from_events(
                events,
                costs.to_vec(),
            )))
        })
        .collect()
}

/// Builds the per-neighborhood Oracle schedules from a resident record
/// slice (empty for strategies that do not need them).
fn build_schedules(
    records: &[SessionRecord],
    catalog: &ProgramCatalog,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
) -> Result<Vec<Option<Arc<AccessSchedule>>>, SimError> {
    if !config.strategy().needs_schedule() {
        return Ok(vec![None; topo.neighborhood_count()]);
    }
    let mut per_nbhd: Vec<Vec<(SimTime, ProgramId)>> = vec![Vec::new(); topo.neighborhood_count()];
    for r in records {
        let nbhd = topo.neighborhood_of_user(r.user)?;
        per_nbhd[nbhd.index()].push((r.start, r.program));
    }
    let costs = schedule_costs(catalog, config, segmenter);
    Ok(schedules_from_events(per_nbhd, &costs))
}

/// Builds the full global feed from a resident record slice (a pure
/// function of the trace — see the module docs), or `None` when the
/// strategy ignores it.
fn build_feed(
    records: &[SessionRecord],
    ctxs: &[SessionCtx],
    config: &SimConfig,
    segmenter: &Segmenter,
) -> Option<GlobalFeed> {
    config.strategy().needs_feed().then(|| {
        let mut feed = GlobalFeed::new();
        for (rec, ctx) in records.iter().zip(ctxs) {
            feed.publish(feed_event(rec, ctx, config, segmenter));
        }
        feed
    })
}

/// Builds the index server for neighborhood `n`. Shared by both engine
/// paths so shard-local caches are configured exactly like serial ones
/// (including the per-neighborhood placement RNG stream).
fn build_index(
    n: usize,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    schedule: Option<Arc<AccessSchedule>>,
) -> Result<IndexServer, SimError> {
    let nominal = config.stream_rate() * config.segment_len();
    let id = NeighborhoodId::new(n as u32);
    let members: Vec<(PeerId, u32)> = topo
        .neighborhood(id)?
        .members()
        .iter()
        .map(|&p| {
            Ok::<_, SimError>((
                p,
                (topo.stb(p)?.capacity().as_bits() / nominal.as_bits()) as u32,
            ))
        })
        .collect::<Result<_, _>>()?;
    // Give each neighborhood's random placement its own stream.
    let placement = match config.placement() {
        PlacementPolicy::Random { seed } => PlacementPolicy::Random {
            seed: seed ^ ((n as u64) << 32),
        },
        other => other,
    };
    let ledger = SlotLedger::new(members, placement);
    let strategy = config
        .strategy()
        .build(ledger.total_slots(), id, schedule)?;
    let mut index =
        IndexServer::with_replication(id, strategy, *segmenter, ledger, config.replication());
    if let Some(fill) = config.fill_override() {
        index.set_fill_policy(fill);
    }
    Ok(index)
}

/// Builds every neighborhood's index server.
fn build_indexes(
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
    schedules: Vec<Option<Arc<AccessSchedule>>>,
) -> Result<Vec<IndexServer>, SimError> {
    schedules
        .into_iter()
        .enumerate()
        .map(|(n, schedule)| build_index(n, topo, config, segmenter, schedule))
        .collect()
}

/// Assembles the serial report from the whole-plant topology and indexes.
fn assemble_serial_report(
    topo: &Topology,
    indexes: &[IndexServer],
    counters: EngineCounters,
    days: u64,
    warmup: u64,
) -> SimReport {
    let server_peak = topo.server().peak_stats(warmup, days);
    let server_hourly = topo.server().meter().hourly_profile();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(topo.neighborhood_count());
    for nbhd in topo.neighborhoods() {
        let stats = nbhd.coax().peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(nbhd.coax().meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
    }
    let mut cache = IndexStats::default();
    for index in indexes {
        cache += *index.stats();
    }
    SimReport {
        server_peak,
        server_total: topo.server().total(),
        server_hourly,
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions: counters.sessions,
        segment_requests: counters.segment_requests,
        viewer_overcommits: counters.viewer_overcommits,
        measured_from_day: warmup,
        measured_to_day: days,
    }
}

/// Merges shard outcomes, in neighborhood order, into the report the
/// serial engine would produce. Bit-exact: the server meter folds with
/// [`RateMeter::merge`] (commutative bucket accounting), cache counters
/// fold with `IndexStats + IndexStats`, and coax statistics are collected
/// in neighborhood order.
fn merge_outcomes(
    outcomes: impl IntoIterator<Item = Result<ShardOutcome, SimError>>,
    days: u64,
    warmup: u64,
    nbhd_count: usize,
) -> Result<SimReport, SimError> {
    let mut server = RateMeter::hourly();
    let mut coax_samples = Vec::new();
    let mut coax_per_neighborhood = Vec::with_capacity(nbhd_count);
    let mut cache = IndexStats::default();
    let mut counters = EngineCounters::default();
    for outcome in outcomes {
        let shard = outcome?;
        server.merge(&shard.server);
        let stats = shard.coax.peak_stats(warmup, days);
        coax_per_neighborhood.push(stats.mean);
        coax_samples.extend(shard.coax.meter().window_samples(
            warmup,
            days,
            PEAK_START_HOUR,
            PEAK_END_HOUR,
        ));
        cache += shard.stats;
        counters.absorb(shard.counters);
    }
    Ok(SimReport {
        server_peak: server.peak_stats(warmup, days),
        server_total: server.total(),
        server_hourly: server.hourly_profile(),
        coax_peak: RateStats::from_samples(&coax_samples),
        coax_per_neighborhood,
        cache,
        sessions: counters.sessions,
        segment_requests: counters.segment_requests,
        viewer_overcommits: counters.viewer_overcommits,
        measured_from_day: warmup,
        measured_to_day: days,
    })
}

fn build_topology<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
) -> Result<Topology, SimError> {
    Ok(Topology::build(
        TopologyConfig::new(source.user_count(), config.neighborhood_size())
            .with_per_peer_storage(config.per_peer_storage())
            .with_stream_slots(config.stream_slots())
            .with_coax_spec(*config.coax_spec()),
    )?)
}

/// Runs one simulation of the workload in `source` under `config` and
/// returns the measured report.
///
/// This is the serial reference path: one global event heap against the
/// whole plant. A resident [`Trace`](cablevod_trace::record::Trace) takes
/// the classic precomputed hot path; chunked sources (an on-disk
/// [`ColumnarReader`](cablevod_trace::columnar::ColumnarReader),
/// a [`ChunkedTrace`](cablevod_trace::source::ChunkedTrace)) stream
/// through the engine with bounded resident memory. Both produce
/// bit-identical reports; [`run_parallel`] matches them too.
///
/// Deterministic: identical inputs produce identical reports.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations, and
/// propagates trace-source failures and broken-invariant failures from
/// the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let report = run(&trace, &SimConfig::paper_default().with_neighborhood_size(100)
///     .with_warmup_days(1))?;
/// assert!(report.sessions > 0);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run<S: TraceSource + ?Sized>(source: &S, config: &SimConfig) -> Result<SimReport, SimError> {
    check_record_count(source)?;
    match source.resident_records() {
        Some(records) => run_resident(records, source, config),
        None => run_streaming(source, config),
    }
}

/// Session indices ride in `u32` heap entries on every path (resident and
/// streaming), so traces beyond 2^32 records are rejected up front rather
/// than silently wrapping.
fn check_record_count<S: TraceSource + ?Sized>(source: &S) -> Result<(), SimError> {
    if source.record_count() > u64::from(u32::MAX) {
        return Err(SimError::Config {
            reason: "traces beyond 2^32 records are not supported".into(),
        });
    }
    Ok(())
}

/// The classic serial path over a fully resident record slice.
fn run_resident<S: TraceSource + ?Sized>(
    records: &[SessionRecord],
    source: &S,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let catalog = source.catalog();

    let mut topo = build_topology(source, config)?;
    let ctxs = precompute_sessions(records, catalog, &topo, &segmenter)?;
    let schedules = build_schedules(records, catalog, &topo, config, &segmenter)?;
    let feed = build_feed(records, &ctxs, config, &segmenter);
    let mut indexes = build_indexes(&topo, config, &segmenter, schedules)?;

    // Continuation events: (segment start, session index, segment index).
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u16)>> = BinaryHeap::new();
    let mut next_record = 0usize;
    let mut counters = EngineCounters::default();

    loop {
        let take_record = match (next_record < records.len(), heap.peek()) {
            (false, None) => break,
            (true, None) => true,
            (false, Some(_)) => false,
            (true, Some(&Reverse((t, _, _)))) => records[next_record].start <= t,
        };

        if take_record {
            let idx = next_record;
            next_record += 1;
            let ctx = &ctxs[idx];
            let cont = start_session(
                &records[idx],
                ctx,
                config,
                &segmenter,
                &mut topo,
                &mut indexes[ctx.nbhd as usize],
                feed.as_ref().map(|f| (f as &dyn FeedEvents, idx + 1)),
                &mut counters,
            )?;
            if let Some((t, seg)) = cont {
                heap.push(Reverse((t, idx as u32, seg)));
            }
        } else {
            let Reverse((_, session_idx, seg_idx)) = heap.pop().expect("peeked entry exists");
            let idx = session_idx as usize;
            let ctx = &ctxs[idx];
            let cont = process_segment(
                &records[idx],
                ctx,
                seg_idx,
                &segmenter,
                config,
                &mut topo,
                &mut indexes[ctx.nbhd as usize],
                &mut counters.segment_requests,
            )?;
            if let Some((t, seg)) = cont {
                heap.push(Reverse((t, session_idx, seg)));
            }
        }
    }

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    Ok(assemble_serial_report(
        &topo, &indexes, counters, days, warmup,
    ))
}

/// Sequential chunk-at-a-time reader over a [`TraceSource`].
struct RecordStream<'a, S: TraceSource + ?Sized> {
    source: &'a S,
    chunk: usize,
    buf: Vec<SessionRecord>,
    pos: usize,
    /// Global index of `buf[pos]`.
    next_index: u64,
}

impl<'a, S: TraceSource + ?Sized> RecordStream<'a, S> {
    fn new(source: &'a S) -> Self {
        RecordStream {
            source,
            chunk: 0,
            buf: Vec::new(),
            pos: 0,
            next_index: 0,
        }
    }

    /// Ensures the buffer holds the next record; false at end of stream.
    fn fill(&mut self) -> Result<bool, SimError> {
        while self.pos == self.buf.len() {
            if self.chunk >= self.source.chunk_count() {
                return Ok(false);
            }
            self.source.read_chunk(self.chunk, &mut self.buf)?;
            self.pos = 0;
            self.chunk += 1;
        }
        Ok(true)
    }

    fn peek_start(&mut self) -> Result<Option<SimTime>, SimError> {
        Ok(if self.fill()? {
            Some(self.buf[self.pos].start)
        } else {
            None
        })
    }

    fn next(&mut self) -> Result<Option<(u64, SessionRecord)>, SimError> {
        if !self.fill()? {
            return Ok(None);
        }
        let rec = self.buf[self.pos];
        let gidx = self.next_index;
        self.pos += 1;
        self.next_index += 1;
        Ok(Some((gidx, rec)))
    }
}

/// Slab of in-flight sessions: the streaming paths retain only records
/// whose continuation events are still in the heap, keyed by a reusable
/// slot id carried alongside the heap entry (the slot never participates
/// in event ordering — heap keys stay `(time, global index, segment)`).
#[derive(Default)]
struct ActiveSessions {
    slots: Vec<(SessionRecord, SessionCtx)>,
    free: Vec<u32>,
}

impl ActiveSessions {
    fn insert(&mut self, rec: SessionRecord, ctx: SessionCtx) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = (rec, ctx);
            slot
        } else {
            self.slots.push((rec, ctx));
            (self.slots.len() - 1) as u32
        }
    }

    fn get(&self, slot: u32) -> (SessionRecord, SessionCtx) {
        self.slots[slot as usize]
    }

    fn remove(&mut self, slot: u32) {
        self.free.push(slot);
    }
}

/// Builds Oracle schedules with one streaming pass over the source.
///
/// Oracle is inherently offline — it needs the whole future — so this is
/// the one strategy whose auxiliary state still grows with trace length
/// (one `(time, program)` pair per record); all per-record *simulation*
/// state stays bounded.
fn build_schedules_streaming<S: TraceSource + ?Sized>(
    source: &S,
    topo: &Topology,
    config: &SimConfig,
    segmenter: &Segmenter,
) -> Result<Vec<Option<Arc<AccessSchedule>>>, SimError> {
    let mut per_nbhd: Vec<Vec<(SimTime, ProgramId)>> = vec![Vec::new(); topo.neighborhood_count()];
    let mut buf = Vec::new();
    for chunk in 0..source.chunk_count() {
        source.read_chunk(chunk, &mut buf)?;
        for r in &buf {
            let nbhd = topo.neighborhood_of_user(r.user)?;
            per_nbhd[nbhd.index()].push((r.start, r.program));
        }
    }
    let costs = schedule_costs(source.catalog(), config, segmenter);
    Ok(schedules_from_events(per_nbhd, &costs))
}

/// The serial engine over a chunked source: same event order as
/// [`run_resident`], with records staged chunk by chunk, contexts computed
/// at ingestion, and the global feed grown record by record exactly as the
/// serial semantics define it.
fn run_streaming<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let seg_len = segmenter.segment_len().as_secs();
    let catalog = source.catalog();

    let mut topo = build_topology(source, config)?;
    let schedules = if config.strategy().needs_schedule() {
        build_schedules_streaming(source, &topo, config, &segmenter)?
    } else {
        vec![None; topo.neighborhood_count()]
    };
    let mut indexes = build_indexes(&topo, config, &segmenter, schedules)?;
    let mut feed = config.strategy().needs_feed().then(GlobalFeed::new);

    let mut stream = RecordStream::new(source);
    let mut active = ActiveSessions::default();
    // Continuation events: (start, global record index, segment, slot).
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u16, u32)>> = BinaryHeap::new();
    let mut counters = EngineCounters::default();

    loop {
        let take_record = match (stream.peek_start()?, heap.peek()) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(s), Some(&Reverse((t, _, _, _)))) => s <= t,
        };

        if take_record {
            let (gidx, rec) = stream.next()?.expect("peeked record exists");
            let ctx = session_ctx(&rec, catalog, &topo, seg_len)?;
            if let Some(feed) = feed.as_mut() {
                feed.publish(feed_event(&rec, &ctx, config, &segmenter));
            }
            let cont = start_session(
                &rec,
                &ctx,
                config,
                &segmenter,
                &mut topo,
                &mut indexes[ctx.nbhd as usize],
                feed.as_ref()
                    .map(|f| (f as &dyn FeedEvents, gidx as usize + 1)),
                &mut counters,
            )?;
            if let Some((t, seg)) = cont {
                let slot = active.insert(rec, ctx);
                heap.push(Reverse((t, gidx as u32, seg, slot)));
            }
        } else {
            let Reverse((_, gidx, seg_idx, slot)) = heap.pop().expect("peeked entry exists");
            let (rec, ctx) = active.get(slot);
            let cont = process_segment(
                &rec,
                &ctx,
                seg_idx,
                &segmenter,
                config,
                &mut topo,
                &mut indexes[ctx.nbhd as usize],
                &mut counters.segment_requests,
            )?;
            match cont {
                Some((t, seg)) => heap.push(Reverse((t, gidx, seg, slot))),
                None => active.remove(slot),
            }
        }
    }

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    Ok(assemble_serial_report(
        &topo, &indexes, counters, days, warmup,
    ))
}

/// Runs one simulation sharded per neighborhood over `threads` workers,
/// producing a report **bit-identical** to [`run`]'s.
///
/// Correctness rests on the paper's own isolation structure: per-event
/// state (cache, boxes, coax, fiber) is neighborhood-local; the shared
/// server meter merges exactly because bucket accounting is commutative
/// ([`RateMeter::merge`]); and the global feed reproduces serial
/// visibility — via a precomputed feed with per-record consumption bounds
/// on resident sources, via the watermark protocol (see the module docs)
/// on streaming sources. Shards are scheduled work-stealing style
/// (resident) or as cooperative tasks (streaming), so thread count
/// affects wall-clock only, never results.
///
/// # Errors
///
/// Returns [`SimError::Config`] for invalid configurations, and
/// propagates trace-source failures and broken-invariant failures from
/// the cache and plant layers.
///
/// # Examples
///
/// ```
/// use cablevod_sim::{run, run_parallel, SimConfig};
/// use cablevod_trace::synth::{generate, SynthConfig};
///
/// let trace = generate(&SynthConfig { users: 300, programs: 60, days: 3,
///     ..SynthConfig::smoke_test() });
/// let config = SimConfig::paper_default().with_neighborhood_size(100).with_warmup_days(1);
/// assert_eq!(run_parallel(&trace, &config, 4)?, run(&trace, &config)?);
/// # Ok::<(), cablevod_sim::SimError>(())
/// ```
pub fn run_parallel<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    threads: usize,
) -> Result<SimReport, SimError> {
    check_record_count(source)?;
    match source.resident_records() {
        Some(records) => run_parallel_resident(records, source, config, threads),
        None => run_parallel_streaming(source, config, threads),
    }
}

/// The classic sharded path over a fully resident record slice, with the
/// precomputed global feed.
fn run_parallel_resident<S: TraceSource + ?Sized>(
    records: &[SessionRecord],
    source: &S,
    config: &SimConfig,
    threads: usize,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let catalog = source.catalog();

    // The topology is built once for membership, capacities and placement
    // determinism, then only read; every shard owns fresh mutable state.
    let topo = build_topology(source, config)?;

    let ctxs = precompute_sessions(records, catalog, &topo, &segmenter)?;
    let schedules = build_schedules(records, catalog, &topo, config, &segmenter)?;
    let feed = build_feed(records, &ctxs, config, &segmenter);
    let positions = topo.local_positions();

    let nbhd_count = topo.neighborhood_count();
    let mut shard_records: Vec<Vec<u32>> = vec![Vec::new(); nbhd_count];
    for (i, ctx) in ctxs.iter().enumerate() {
        shard_records[ctx.nbhd as usize].push(i as u32);
    }

    let outcomes = runner::run_indexed(nbhd_count, threads, |n| {
        let index = build_index(n, &topo, config, &segmenter, schedules[n].clone())?;
        let plant = ShardPlant::build(n, &topo, config, &positions)?;
        run_shard(
            records,
            &ctxs,
            &shard_records[n],
            index,
            plant,
            feed.as_ref(),
            &segmenter,
            config,
        )
    });

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    merge_outcomes(outcomes, days, warmup, nbhd_count)
}

/// Runs one neighborhood's complete event sequence (resident path): its
/// records in trace order interleaved with its continuation heap, exactly
/// the relative order the serial engine would process them in
/// (cross-neighborhood interleavings never touch this shard's state).
#[allow(clippy::too_many_arguments)]
fn run_shard(
    records: &[SessionRecord],
    ctxs: &[SessionCtx],
    my_records: &[u32],
    mut index: IndexServer,
    mut plant: ShardPlant<'_>,
    feed: Option<&GlobalFeed>,
    segmenter: &Segmenter,
    config: &SimConfig,
) -> Result<ShardOutcome, SimError> {
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u16)>> = BinaryHeap::new();
    let mut next = 0usize;
    let mut counters = EngineCounters::default();

    loop {
        let take_record = match (next < my_records.len(), heap.peek()) {
            (false, None) => break,
            (true, None) => true,
            (false, Some(_)) => false,
            (true, Some(&Reverse((t, _, _)))) => records[my_records[next] as usize].start <= t,
        };

        if take_record {
            let idx = my_records[next] as usize;
            next += 1;
            let cont = start_session(
                &records[idx],
                &ctxs[idx],
                config,
                segmenter,
                &mut plant,
                &mut index,
                feed.map(|f| (f as &dyn FeedEvents, idx + 1)),
                &mut counters,
            )?;
            if let Some((t, seg)) = cont {
                heap.push(Reverse((t, idx as u32, seg)));
            }
        } else {
            let Reverse((_, session_idx, seg_idx)) = heap.pop().expect("peeked entry exists");
            let idx = session_idx as usize;
            let cont = process_segment(
                &records[idx],
                &ctxs[idx],
                seg_idx,
                segmenter,
                config,
                &mut plant,
                &mut index,
                &mut counters.segment_requests,
            )?;
            if let Some((t, seg)) = cont {
                heap.push(Reverse((t, session_idx, seg)));
            }
        }
    }

    Ok(ShardOutcome {
        coax: plant.coax,
        server: plant.server,
        stats: *index.stats(),
        counters,
    })
}

/// What one [`ShardTask::step`] call ended with.
enum Step {
    /// The shard processed every one of its events.
    Done,
    /// The shard must wait for the feed frontier; `progressed` reports
    /// whether any events were processed before blocking (workers yield
    /// the CPU only when a full round over their tasks made no progress).
    Blocked { progressed: bool },
}

/// One neighborhood's event loop as a resumable cooperative task
/// (streaming sharded path). Workers multiplex several tasks; a task
/// parks — instead of spinning — whenever the watermark frontier has not
/// yet reached the record it must start next.
struct ShardTask<'a, S: TraceSource + ?Sized> {
    nbhd: usize,
    source: &'a S,
    topo: &'a Topology,
    config: &'a SimConfig,
    segmenter: Segmenter,
    /// Chunks known to contain this neighborhood's records (the runtime
    /// per-neighborhood chunk index).
    chunks: &'a [u32],
    next_chunk: usize,
    buf: Vec<SessionRecord>,
    /// This shard's records from the current chunk, with global indices
    /// and precomputed contexts; events already published to the feed.
    pending: VecDeque<(u32, SessionRecord, SessionCtx)>,
    exhausted: bool,
    feed: Option<&'a WatermarkFeed>,
    /// Last observed frontier — monotonic, so the per-producer watermark
    /// scan reruns only when this cached value is not yet past the record
    /// about to start, not on every session.
    frontier_cache: u64,
    aborted: &'a AtomicBool,
    index: IndexServer,
    plant: ShardPlant<'a>,
    active: ActiveSessions,
    heap: BinaryHeap<Reverse<(SimTime, u32, u16, u32)>>,
    counters: EngineCounters,
}

impl<'a, S: TraceSource + ?Sized> ShardTask<'a, S> {
    #[allow(clippy::too_many_arguments)]
    fn build(
        nbhd: usize,
        source: &'a S,
        topo: &'a Topology,
        config: &'a SimConfig,
        segmenter: Segmenter,
        chunks: &'a [u32],
        schedule: Option<Arc<AccessSchedule>>,
        positions: &'a [u32],
        feed: Option<&'a WatermarkFeed>,
        aborted: &'a AtomicBool,
    ) -> Result<Self, SimError> {
        let index = build_index(nbhd, topo, config, &segmenter, schedule)?;
        let plant = ShardPlant::build(nbhd, topo, config, positions)?;
        Ok(ShardTask {
            nbhd,
            source,
            topo,
            config,
            segmenter,
            chunks,
            next_chunk: 0,
            buf: Vec::new(),
            pending: VecDeque::new(),
            exhausted: false,
            feed,
            frontier_cache: 0,
            aborted,
            index,
            plant,
            active: ActiveSessions::default(),
            heap: BinaryHeap::new(),
            counters: EngineCounters::default(),
        })
    }

    /// Loads chunks (from this shard's chunk index) until one yields
    /// records of this neighborhood, publishing their feed events at
    /// discovery and advancing this producer's watermark — publication at
    /// scan time is safe because consumers bound themselves by their own
    /// record index, so an early-published event is never visible early.
    fn refill(&mut self) -> Result<(), SimError> {
        let seg_len = self.segmenter.segment_len().as_secs();
        while self.pending.is_empty() && self.next_chunk < self.chunks.len() {
            let chunk = self.chunks[self.next_chunk] as usize;
            self.source.read_chunk(chunk, &mut self.buf)?;
            let base = self.source.chunk_first_index(chunk);
            for (i, rec) in self.buf.iter().enumerate() {
                if self.topo.neighborhood_of_user(rec.user)?.index() != self.nbhd {
                    continue;
                }
                let ctx = session_ctx(rec, self.source.catalog(), self.topo, seg_len)?;
                let gidx = base + i as u64;
                if let Some(feed) = self.feed {
                    feed.publish(gidx, feed_event(rec, &ctx, self.config, &self.segmenter));
                }
                self.pending.push_back((gidx as u32, *rec, ctx));
            }
            self.next_chunk += 1;
            if let Some(feed) = self.feed {
                // Everything before our next indexed chunk contains none of
                // our records, so the watermark jumps straight to it.
                let mark = if self.next_chunk < self.chunks.len() {
                    self.source
                        .chunk_first_index(self.chunks[self.next_chunk] as usize)
                } else {
                    u64::MAX
                };
                feed.advance(self.nbhd, mark);
            }
        }
        if self.pending.is_empty() && !self.exhausted {
            self.exhausted = true;
            if let Some(feed) = self.feed {
                feed.finish(self.nbhd);
            }
        }
        Ok(())
    }

    /// Processes events until the shard completes or must wait for the
    /// feed frontier.
    fn step(&mut self) -> Result<Step, SimError> {
        let mut progressed = false;
        loop {
            if self.aborted.load(Ordering::Relaxed) {
                return Err(SimError::Config {
                    reason: ABORTED.into(),
                });
            }
            if self.pending.is_empty() && !self.exhausted {
                self.refill()?;
            }
            let take_record = match (self.pending.front(), self.heap.peek()) {
                (None, None) => {
                    if let Some(feed) = self.feed {
                        feed.finish(self.nbhd);
                    }
                    return Ok(Step::Done);
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(&(_, rec, _)), Some(&Reverse((t, _, _, _)))) => rec.start <= t,
            };

            if take_record {
                let &(gidx, rec, ctx) = self.pending.front().expect("checked non-empty");
                if let Some(feed) = self.feed {
                    // Serial prefix visibility: events 0..=gidx must all be
                    // published before this session may consult the feed.
                    // The frontier only moves forward, so the cross-shard
                    // watermark scan reruns only until it passes gidx once.
                    if self.frontier_cache <= u64::from(gidx) {
                        self.frontier_cache = feed.frontier();
                        if self.frontier_cache <= u64::from(gidx) {
                            return Ok(Step::Blocked { progressed });
                        }
                    }
                }
                self.pending.pop_front();
                let view = self.feed.map(|f| f.view_at(self.frontier_cache));
                let cont = start_session(
                    &rec,
                    &ctx,
                    self.config,
                    &self.segmenter,
                    &mut self.plant,
                    &mut self.index,
                    view.as_ref()
                        .map(|v| (v as &dyn FeedEvents, gidx as usize + 1)),
                    &mut self.counters,
                )?;
                if let Some((t, seg)) = cont {
                    let slot = self.active.insert(rec, ctx);
                    self.heap.push(Reverse((t, gidx, seg, slot)));
                }
            } else {
                let Reverse((_, gidx, seg_idx, slot)) =
                    self.heap.pop().expect("peeked entry exists");
                let (rec, ctx) = self.active.get(slot);
                let cont = process_segment(
                    &rec,
                    &ctx,
                    seg_idx,
                    &self.segmenter,
                    self.config,
                    &mut self.plant,
                    &mut self.index,
                    &mut self.counters.segment_requests,
                )?;
                match cont {
                    Some((t, seg)) => self.heap.push(Reverse((t, gidx, seg, slot))),
                    None => self.active.remove(slot),
                }
            }
            progressed = true;
        }
    }

    fn into_outcome(self) -> ShardOutcome {
        ShardOutcome {
            coax: self.plant.coax,
            server: self.plant.server,
            stats: *self.index.stats(),
            counters: self.counters,
        }
    }
}

/// The sharded engine over a chunked source: shards stream their own
/// chunk subsets and synchronize global-feed visibility through the
/// watermark protocol (see the module docs).
fn run_parallel_streaming<S: TraceSource + ?Sized>(
    source: &S,
    config: &SimConfig,
    threads: usize,
) -> Result<SimReport, SimError> {
    config.validate()?;
    let total = source.record_count();
    let segmenter = Segmenter::new(config.segment_len(), config.stream_rate());
    let topo = build_topology(source, config)?;
    let nbhd_count = topo.neighborhood_count();
    let needs_schedule = config.strategy().needs_schedule();

    // One streaming pre-pass builds the per-neighborhood chunk index (and,
    // for Oracle, the future schedules): each shard then reads only chunks
    // that contain at least one of its records.
    let mut shard_chunks: Vec<Vec<u32>> = vec![Vec::new(); nbhd_count];
    let mut sched_events: Vec<Vec<(SimTime, ProgramId)>> = vec![Vec::new(); nbhd_count];
    {
        let mut buf = Vec::new();
        let mut seen = vec![u32::MAX; nbhd_count];
        for chunk in 0..source.chunk_count() {
            source.read_chunk(chunk, &mut buf)?;
            for r in &buf {
                let n = topo.neighborhood_of_user(r.user)?.index();
                if seen[n] != chunk as u32 {
                    seen[n] = chunk as u32;
                    shard_chunks[n].push(chunk as u32);
                }
                if needs_schedule {
                    sched_events[n].push((r.start, r.program));
                }
            }
        }
    }
    let schedules: Vec<Option<Arc<AccessSchedule>>> = if needs_schedule {
        let costs = schedule_costs(source.catalog(), config, &segmenter);
        schedules_from_events(sched_events, &costs)
    } else {
        vec![None; nbhd_count]
    };

    let feed = config
        .strategy()
        .needs_feed()
        .then(|| WatermarkFeed::new(total as usize, nbhd_count));
    let positions = topo.local_positions();
    let aborted = AtomicBool::new(false);

    let threads = threads.clamp(1, nbhd_count);
    let mut collected: Vec<Option<Result<ShardOutcome, SimError>>> =
        (0..nbhd_count).map(|_| None).collect();
    let worker_results: Vec<Vec<(usize, Result<ShardOutcome, SimError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let topo = &topo;
                    let schedules = &schedules;
                    let shard_chunks = &shard_chunks;
                    let positions = &positions;
                    let feed = feed.as_ref();
                    let aborted = &aborted;
                    let segmenter = &segmenter;
                    scope.spawn(move || {
                        drive_worker(
                            w,
                            threads,
                            nbhd_count,
                            source,
                            topo,
                            config,
                            *segmenter,
                            schedules,
                            shard_chunks,
                            positions,
                            feed,
                            aborted,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
    for (nbhd, result) in worker_results.into_iter().flatten() {
        collected[nbhd] = Some(result);
    }

    // Prefer a shard's real failure over the abort sentinel its siblings
    // raised while bailing out.
    if aborted.load(Ordering::Relaxed) {
        let mut sentinel = None;
        for result in collected.iter_mut() {
            match result.take() {
                Some(Err(SimError::Config { reason })) if reason == ABORTED => {
                    sentinel = Some(SimError::Config { reason });
                }
                Some(Err(e)) => return Err(e),
                _ => {}
            }
        }
        return Err(sentinel.expect("abort flag implies at least one error"));
    }

    let days = source.days().max(1);
    let warmup = config.warmup_days().min(days - 1);
    merge_outcomes(
        collected
            .into_iter()
            .map(|r| r.expect("every shard reports exactly once")),
        days,
        warmup,
        nbhd_count,
    )
}

/// Drives the shard tasks assigned to worker `w` (neighborhoods `w`,
/// `w + stride`, ...), round-robin, yielding the CPU only when every
/// task is parked on the feed frontier.
#[allow(clippy::too_many_arguments)]
fn drive_worker<'a, S: TraceSource + ?Sized>(
    w: usize,
    stride: usize,
    nbhd_count: usize,
    source: &'a S,
    topo: &'a Topology,
    config: &'a SimConfig,
    segmenter: Segmenter,
    schedules: &'a [Option<Arc<AccessSchedule>>],
    shard_chunks: &'a [Vec<u32>],
    positions: &'a [u32],
    feed: Option<&'a WatermarkFeed>,
    aborted: &'a AtomicBool,
) -> Vec<(usize, Result<ShardOutcome, SimError>)> {
    let mut results = Vec::new();
    let mut tasks: Vec<ShardTask<'a, S>> = Vec::new();
    for nbhd in (w..nbhd_count).step_by(stride) {
        match ShardTask::build(
            nbhd,
            source,
            topo,
            config,
            segmenter,
            &shard_chunks[nbhd],
            schedules[nbhd].clone(),
            positions,
            feed,
            aborted,
        ) {
            Ok(task) => tasks.push(task),
            Err(e) => {
                // Do NOT finish this shard's feed watermark: its events were
                // never published, and raising the mark would let siblings
                // pass the frontier check into unpublished slots. The abort
                // flag unparks them instead (checked at every step entry).
                aborted.store(true, Ordering::Relaxed);
                results.push((nbhd, Err(e)));
            }
        }
    }

    while !tasks.is_empty() {
        let mut any_progress = false;
        let mut i = 0;
        while i < tasks.len() {
            match tasks[i].step() {
                Ok(Step::Done) => {
                    let task = tasks.swap_remove(i);
                    results.push((task.nbhd, Ok(task.into_outcome())));
                    any_progress = true;
                }
                Ok(Step::Blocked { progressed }) => {
                    any_progress |= progressed;
                    i += 1;
                }
                Err(e) => {
                    // As at build failure: leave the watermark where honest
                    // publication got to, and rely on the abort flag — a
                    // finished mark over unpublished slots would turn this
                    // error into sibling panics on empty feed slots.
                    aborted.store(true, Ordering::Relaxed);
                    let task = tasks.swap_remove(i);
                    results.push((task.nbhd, Err(e)));
                    any_progress = true;
                }
            }
        }
        if !any_progress {
            std::thread::yield_now();
        }
    }
    results
}

/// Handles one session start: viewer slot accounting, feed sync, strategy
/// update, and the first segment request. Returns the continuation event
/// to schedule, if the session has further segments.
#[allow(clippy::too_many_arguments)]
fn start_session<P: SegmentPlant>(
    rec: &SessionRecord,
    ctx: &SessionCtx,
    config: &SimConfig,
    segmenter: &Segmenter,
    plant: &mut P,
    index: &mut IndexServer,
    feed: Option<(&dyn FeedEvents, usize)>,
    counters: &mut EngineCounters,
) -> Result<Option<(SimTime, u16)>, SimError> {
    counters.sessions += 1;

    // The viewer's own playback occupies one of its slots for the whole
    // session; playback is never blocked, overcommit is counted
    // (DESIGN.md §5).
    let stb = plant.stbs().stb_mut(ctx.home)?;
    stb.start_stream_unchecked(rec.start, rec.start + ctx.watched);
    if stb.is_overcommitted(rec.start) {
        counters.viewer_overcommits += 1;
    }

    if let Some((feed, limit)) = feed {
        // Events up to and including this record are "published" (see the
        // module docs on feed exactness).
        index.sync_feed(feed, rec.start, limit);
    }
    index.on_program_access(rec.program, ctx.length, rec.start, plant.stbs())?;

    if ctx.watched.as_secs() > 0 {
        process_segment(
            rec,
            ctx,
            ctx.first_seg,
            segmenter,
            config,
            plant,
            index,
            &mut counters.segment_requests,
        )
    } else {
        Ok(None)
    }
}

/// Resolves one segment request and returns the session's next one (the
/// caller schedules it on its heap).
///
/// `seg_idx` is the *absolute* segment index within the program; sessions
/// that seek (`offset > 0`) start mid-program, so the playback span is
/// `[offset, offset + watched_total)` in program positions.
#[allow(clippy::too_many_arguments)]
fn process_segment<P: SegmentPlant>(
    rec: &SessionRecord,
    ctx: &SessionCtx,
    seg_idx: u16,
    segmenter: &Segmenter,
    config: &SimConfig,
    plant: &mut P,
    index: &mut IndexServer,
    segment_requests: &mut u64,
) -> Result<Option<(SimTime, u16)>, SimError> {
    let seg_len = segmenter.segment_len().as_secs();
    let span_end = ctx.offset + ctx.watched.as_secs();
    let k = u64::from(seg_idx);
    // Overlap of this segment's positions with the playback span.
    let overlap_start = ctx.offset.max(k * seg_len);
    let overlap_end = span_end.min((k + 1) * seg_len);
    debug_assert!(overlap_start < overlap_end, "segment outside playback span");
    let watched = overlap_end - overlap_start;
    let start = rec.start + SimDuration::from_secs(overlap_start - ctx.offset);
    let end = start + SimDuration::from_secs(watched);
    let size = config.stream_rate() * SimDuration::from_secs(watched);
    let segment = SegmentId::new(rec.program, seg_idx);

    *segment_requests += 1;
    let resolution = index.resolve_segment(segment, rec.start, start, end, plant.stbs())?;
    let nbhd = index.home();
    if let Resolution::Miss(_) = resolution {
        // Fig 4: central server -> fiber -> headend rebroadcast.
        plant.record_miss(nbhd, start, end, size)?;
    }
    // Broadcast medium: the segment crosses the coax either way (§VI-B).
    plant.record_broadcast(nbhd, start, end, size)?;

    let next_pos = (k + 1) * seg_len;
    Ok((next_pos < span_end).then(|| {
        (
            rec.start + SimDuration::from_secs(next_pos - ctx.offset),
            seg_idx + 1,
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cablevod_cache::StrategySpec;
    use cablevod_hfc::units::{BitRate, DataSize};
    use cablevod_trace::record::Trace;
    use cablevod_trace::source::ChunkedTrace;
    use cablevod_trace::synth::{generate, SynthConfig};

    fn small_trace() -> Trace {
        generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            ..SynthConfig::smoke_test()
        })
    }

    fn base_config() -> SimConfig {
        SimConfig::paper_default()
            .with_neighborhood_size(200)
            .with_per_peer_storage(DataSize::from_gigabytes(2))
            .with_warmup_days(2)
    }

    #[test]
    fn no_cache_equals_offered_load() {
        let trace = small_trace();
        let report =
            run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        assert_eq!(report.cache.hits, 0);
        assert_eq!(report.hit_rate(), 0.0);
        // Server carries every watched second at the stream rate.
        let expected_bits = trace
            .records()
            .iter()
            .map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum::<u64>();
        assert_eq!(report.server_total.as_bits(), expected_bits);
        assert_eq!(report.sessions as usize, trace.len());
    }

    #[test]
    fn caching_reduces_server_load() {
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        assert!(lfu.cache.hits > 0, "cache must produce hits");
        assert!(
            lfu.server_total < none.server_total,
            "lfu {} vs none {}",
            lfu.server_total,
            none.server_total
        );
        assert!(lfu.server_peak.mean < none.server_peak.mean);
    }

    #[test]
    fn coax_load_is_identical_with_and_without_cache() {
        // §VI-B: broadcast means every segment crosses the coax once no
        // matter who serves it.
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        assert_eq!(none.coax_peak.mean, lfu.coax_peak.mean);
        assert_eq!(none.segment_requests, lfu.segment_requests);
    }

    #[test]
    fn oracle_dominates_lfu_dominates_nothing() {
        let trace = small_trace();
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        let lfu = run(&trace, &base_config()).expect("runs");
        let oracle = run(
            &trace,
            &base_config().with_strategy(StrategySpec::default_oracle()),
        )
        .expect("runs");
        assert!(
            oracle.server_total <= lfu.server_total,
            "oracle must not lose to LFU"
        );
        assert!(lfu.server_total < none.server_total);
    }

    #[test]
    fn deterministic_reports() {
        let trace = small_trace();
        let a = run(&trace, &base_config()).expect("runs");
        let b = run(&trace, &base_config()).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn server_plus_peer_bytes_conserve_demand() {
        let trace = small_trace();
        let report = run(&trace, &base_config()).expect("runs");
        // Total coax bytes = total demand; server bytes = misses only.
        let coax_total: u64 = {
            // recompute demand from the trace
            trace
                .records()
                .iter()
                .map(|r| {
                    let len = trace.catalog().length(r.program).expect("valid");
                    r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
                })
                .sum()
        };
        assert!(report.server_total.as_bits() <= coax_total);
        assert_eq!(
            report.cache.requests(),
            report.segment_requests,
            "every segment request is resolved exactly once"
        );
    }

    #[test]
    fn global_lfu_runs_and_uses_feed() {
        let trace = small_trace();
        let config = base_config().with_strategy(StrategySpec::GlobalLfu {
            history: SimDuration::from_days(3),
            lag: SimDuration::from_minutes(30),
        });
        let report = run(&trace, &config).expect("runs");
        assert!(report.cache.hits > 0);
    }

    #[test]
    fn seeking_sessions_request_interior_segments() {
        let trace = generate(&SynthConfig {
            users: 600,
            programs: 150,
            days: 6,
            seek_prob: 0.3,
            ..SynthConfig::smoke_test()
        });
        assert!(
            trace.iter().any(|r| r.offset.as_secs() > 0),
            "workload must contain seeks"
        );
        let none = run(&trace, &base_config().with_strategy(StrategySpec::NoCache)).expect("runs");
        // Conservation still holds with seeks.
        let expected_bits: u64 = trace
            .records()
            .iter()
            .map(|r| {
                let len = trace.catalog().length(r.program).expect("valid");
                r.watched(len).as_secs() * BitRate::STREAM_MPEG2_SD.as_bps()
            })
            .sum();
        assert_eq!(none.server_total.as_bits(), expected_bits);
        // Caching still works on a seeking workload.
        let lfu = run(&trace, &base_config()).expect("runs");
        assert!(lfu.cache.hits > 0);
        assert!(lfu.server_total < none.server_total);
    }

    #[test]
    fn replication_two_runs() {
        let trace = small_trace();
        let report = run(&trace, &base_config().with_replication(2)).expect("runs");
        assert!(report.cache.hits > 0);
    }

    #[test]
    fn parallel_matches_serial_on_every_strategy() {
        let trace = small_trace();
        for spec in [
            StrategySpec::NoCache,
            StrategySpec::Lru,
            StrategySpec::default_lfu(),
            StrategySpec::default_oracle(),
            StrategySpec::GlobalLfu {
                history: SimDuration::from_days(3),
                lag: SimDuration::from_minutes(30),
            },
        ] {
            let config = base_config().with_strategy(spec);
            let serial = run(&trace, &config).expect("serial runs");
            for threads in [1, 2, 8] {
                let parallel = run_parallel(&trace, &config, threads).expect("parallel runs");
                assert_eq!(parallel, serial, "strategy {spec:?}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial_with_seeks_and_replication() {
        let trace = generate(&SynthConfig {
            users: 500,
            programs: 120,
            days: 5,
            seek_prob: 0.25,
            ..SynthConfig::smoke_test()
        });
        let config = base_config().with_replication(2);
        let serial = run(&trace, &config).expect("serial runs");
        let parallel = run_parallel(&trace, &config, 3).expect("parallel runs");
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_matches_serial_under_random_placement() {
        let trace = small_trace();
        let config = base_config().with_placement(PlacementPolicy::Random { seed: 7 });
        let serial = run(&trace, &config).expect("serial runs");
        let parallel = run_parallel(&trace, &config, 4).expect("parallel runs");
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_rejects_invalid_configs_like_serial() {
        let trace = small_trace();
        let config = base_config().with_neighborhood_size(0);
        assert!(run_parallel(&trace, &config, 2).is_err());
    }

    #[test]
    fn streaming_serial_matches_resident_on_every_strategy() {
        let trace = small_trace();
        for spec in [
            StrategySpec::NoCache,
            StrategySpec::Lru,
            StrategySpec::default_lfu(),
            StrategySpec::default_oracle(),
            StrategySpec::GlobalLfu {
                history: SimDuration::from_days(3),
                lag: SimDuration::from_minutes(30),
            },
        ] {
            let config = base_config().with_strategy(spec);
            let resident = run(&trace, &config).expect("resident runs");
            for chunk in [64usize, trace.len()] {
                let streamed =
                    run(&ChunkedTrace::new(&trace, chunk), &config).expect("streaming runs");
                assert_eq!(streamed, resident, "strategy {spec:?}, chunk {chunk}");
            }
        }
    }

    #[test]
    fn streaming_parallel_matches_serial_with_watermark_feed() {
        let trace = small_trace();
        let config = base_config().with_strategy(StrategySpec::GlobalLfu {
            history: SimDuration::from_days(3),
            lag: SimDuration::from_minutes(30),
        });
        let serial = run(&trace, &config).expect("serial runs");
        for (chunk, threads) in [(1usize, 2usize), (64, 1), (64, 3), (trace.len(), 2)] {
            let source = ChunkedTrace::new(&trace, chunk);
            let streamed = run_parallel(&source, &config, threads).expect("streaming runs");
            assert_eq!(streamed, serial, "chunk {chunk}, threads {threads}");
        }
    }

    #[test]
    fn streaming_rejects_invalid_configs() {
        let trace = small_trace();
        let source = ChunkedTrace::new(&trace, 64);
        let config = base_config().with_neighborhood_size(0);
        assert!(run(&source, &config).is_err());
        assert!(run_parallel(&source, &config, 2).is_err());
    }
}
